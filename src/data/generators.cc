#include "data/generators.h"

#include <algorithm>
#include <cmath>

namespace caee {
namespace data {

namespace {

// Builds the anomaly-free signal for `length` steps starting at time offset
// `t0` so train and test are one continuous process.
ts::TimeSeries BaseSignal(const SyntheticProfile& p, Rng* rng, int64_t t0,
                          int64_t length) {
  const int64_t d = p.dims;
  const int64_t l = p.num_latents;

  // Latent factor parameters (deterministic given the profile's fork of rng).
  std::vector<double> latent_period(static_cast<size_t>(l));
  std::vector<double> latent_phase(static_cast<size_t>(l));
  std::vector<double> latent_amp(static_cast<size_t>(l));
  for (int64_t i = 0; i < l; ++i) {
    latent_period[i] = p.period_base * rng->Uniform(0.7, 1.8);
    latent_phase[i] = rng->Uniform(0.0, 2.0 * M_PI);
    latent_amp[i] = rng->Uniform(0.6, 1.4);
  }
  // Per-dimension loadings and harmonics.
  std::vector<std::vector<double>> loading(static_cast<size_t>(d));
  std::vector<double> dim_period(static_cast<size_t>(d));
  std::vector<double> dim_phase(static_cast<size_t>(d));
  std::vector<double> dim_amp(static_cast<size_t>(d));
  std::vector<double> dim_offset(static_cast<size_t>(d));
  std::vector<bool> dim_flat(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j) {
    loading[j].resize(static_cast<size_t>(l));
    for (int64_t i = 0; i < l; ++i) {
      loading[j][i] = rng->Gaussian(0.0, p.latent_weight / std::sqrt(double(l)));
    }
    dim_period[j] = p.period_base * rng->Uniform(0.4, 1.2);
    dim_phase[j] = rng->Uniform(0.0, 2.0 * M_PI);
    dim_amp[j] = rng->Uniform(0.3, 1.0);
    dim_offset[j] = rng->Gaussian(0.0, 2.0);
    dim_flat[j] = rng->Bernoulli(p.flat_fraction);
  }
  // Operating-mode regimes: per (dim, mode) offset and amplitude multiplier.
  const int64_t modes = std::max<int64_t>(1, p.num_modes);
  std::vector<std::vector<double>> mode_offset(static_cast<size_t>(d));
  std::vector<std::vector<double>> mode_amp(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j) {
    mode_offset[j].resize(static_cast<size_t>(modes));
    mode_amp[j].resize(static_cast<size_t>(modes));
    for (int64_t m = 0; m < modes; ++m) {
      mode_offset[j][m] = m == 0 ? 0.0 : rng->Gaussian(0.0, 1.5);
      mode_amp[j][m] = m == 0 ? 1.0 : rng->Uniform(0.5, 1.5);
    }
  }

  ts::TimeSeries series(length, d);
  std::vector<double> level(static_cast<size_t>(d), 0.0);
  // Mode transitions ramp over ~kModeRamp steps: smooth enough for a
  // temporal model to follow, yet passing through density-sparse corridors
  // between the mode clusters (the effect that hurts per-observation
  // density estimators on real telemetry).
  constexpr int64_t kModeRamp = 24;
  int64_t mode = 0;
  int64_t prev_mode = 0;
  int64_t ramp_left = 0;
  for (int64_t step = 0; step < length; ++step) {
    const double t = static_cast<double>(t0 + step);
    if (modes > 1 && ramp_left == 0 && rng->Bernoulli(1.0 / p.mode_period)) {
      prev_mode = mode;
      mode = rng->UniformInt(0, modes - 1);
      if (mode != prev_mode) ramp_left = kModeRamp;
    }
    double blend = 1.0;  // weight of the current mode
    if (ramp_left > 0) {
      blend = 1.0 - static_cast<double>(ramp_left) / kModeRamp;
      --ramp_left;
    }
    // Latent values this step.
    std::vector<double> latent(static_cast<size_t>(l));
    for (int64_t i = 0; i < l; ++i) {
      latent[i] = latent_amp[i] *
                  std::sin(2.0 * M_PI * t / latent_period[i] + latent_phase[i]);
    }
    for (int64_t j = 0; j < d; ++j) {
      const double m_off =
          blend * mode_offset[j][static_cast<size_t>(mode)] +
          (1.0 - blend) * mode_offset[j][static_cast<size_t>(prev_mode)];
      const double m_amp =
          blend * mode_amp[j][static_cast<size_t>(mode)] +
          (1.0 - blend) * mode_amp[j][static_cast<size_t>(prev_mode)];
      double v = dim_offset[j] + level[j] + p.drift * t / 1000.0 + m_off;
      if (!dim_flat[j]) {
        double wave = 0.0;
        for (int64_t i = 0; i < l; ++i) wave += loading[j][i] * latent[i];
        for (int h = 1; h <= p.harmonics; ++h) {
          wave += dim_amp[j] / (1.0 + h) *
                  std::sin(2.0 * M_PI * h * t / dim_period[j] + dim_phase[j]);
        }
        v += m_amp * wave;
      }
      v += p.noise * rng->Gaussian();
      series.value(step, j) = static_cast<float>(v);
      // Legitimate (non-anomalous) level regime changes.
      if (p.level_step_prob > 0.0 && rng->Bernoulli(p.level_step_prob)) {
        level[j] += rng->Gaussian(0.0, 0.5);
      }
    }
  }
  return series;
}

int64_t Scaled(int64_t base, double scale) {
  return std::max<int64_t>(256, static_cast<int64_t>(base * scale));
}

}  // namespace

ts::Dataset Generate(const SyntheticProfile& p) {
  Rng rng(p.seed);
  ts::Dataset ds;
  ds.name = p.name;

  if (p.train_equals_test) {
    // ECG protocol: one series used for both phases; labels evaluated only.
    Rng signal_rng = rng.Fork();
    ts::TimeSeries series = BaseSignal(p, &signal_rng, 0, p.test_length);
    Rng inject_rng = rng.Fork();
    InjectAnomalyMix(&series, &inject_rng, p.outlier_ratio, p.mix);
    ds.train = series;  // training ignores the labels
    ds.test = std::move(series);
    return ds;
  }

  // Shared generator parameters => train/test are one continuous process.
  // (BaseSignal consumes rng draws per step, so generate jointly.)
  Rng signal_rng = rng.Fork();
  ts::TimeSeries joint =
      BaseSignal(p, &signal_rng, 0, p.train_length + p.test_length);
  auto train = joint.Slice(0, p.train_length);
  auto test = joint.Slice(p.train_length, p.train_length + p.test_length);
  CAEE_CHECK(train.ok() && test.ok());
  ds.train = std::move(train).value();
  ds.test = std::move(test).value();

  Rng inject_rng = rng.Fork();
  InjectAnomalyMix(&ds.test, &inject_rng, p.outlier_ratio, p.mix);
  return ds;
}

SyntheticProfile EcgProfile(double scale, uint64_t seed) {
  SyntheticProfile p;
  p.name = "ECG";
  p.dims = 2;
  p.train_length = Scaled(2500, scale);
  p.test_length = Scaled(2500, scale);
  p.outlier_ratio = 0.0488;
  p.num_latents = 2;
  p.latent_weight = 0.8;
  p.period_base = 40.0;  // heartbeat-like periodicity
  p.harmonics = 3;
  p.noise = 0.06;
  p.mix = {0.15, 0.0, 0.45, 0.4, 0.0};  // arrhythmia: collective + replayed beats
  p.train_equals_test = true;
  p.seed = seed;
  return p;
}

SyntheticProfile SmdProfile(double scale, uint64_t seed) {
  SyntheticProfile p;
  p.name = "SMD";
  p.dims = 38;
  p.train_length = Scaled(4000, scale);
  p.test_length = Scaled(4000, scale);
  p.outlier_ratio = 0.0416;
  p.num_latents = 4;
  p.latent_weight = 0.7;
  p.period_base = 200.0;  // daily server-load cycle
  p.harmonics = 2;
  p.noise = 0.1;
  p.num_modes = 2;            // load regimes (deployments, config changes)
  p.mode_period = 400.0;
  p.mix = {0.1, 0.15, 0.1, 0.35, 0.3};  // spikes, level shifts, stuck gauges
  p.seed = seed;
  return p;
}

SyntheticProfile MslProfile(double scale, uint64_t seed) {
  SyntheticProfile p;
  p.name = "MSL";
  p.dims = 55;
  p.train_length = Scaled(3000, scale);
  p.test_length = Scaled(3500, scale);
  p.outlier_ratio = 0.0917;
  p.num_latents = 2;
  p.latent_weight = 0.9;
  p.period_base = 100.0;
  p.harmonics = 1;
  p.noise = 0.06;
  p.flat_fraction = 0.2;    // near-constant telemetry channels
  p.num_modes = 2;          // spacecraft command modes
  p.mode_period = 500.0;
  p.mix = {0.05, 0.1, 0.25, 0.35, 0.25};  // command-triggered interval anomalies
  p.seed = seed;
  return p;
}

SyntheticProfile SmapProfile(double scale, uint64_t seed) {
  SyntheticProfile p;
  p.name = "SMAP";
  p.dims = 25;
  p.train_length = Scaled(3000, scale);
  p.test_length = Scaled(4000, scale);
  p.outlier_ratio = 0.1227;
  p.num_latents = 2;
  p.latent_weight = 0.9;
  p.period_base = 120.0;  // orbital cycles
  p.harmonics = 1;
  p.noise = 0.07;
  p.drift = 0.15;           // slow seasonal drift
  p.flat_fraction = 0.1;
  p.num_modes = 2;          // observation modes
  p.mode_period = 500.0;
  p.mix = {0.05, 0.1, 0.15, 0.45, 0.25};
  p.seed = seed;
  return p;
}

SyntheticProfile WadiProfile(double scale, uint64_t seed) {
  SyntheticProfile p;
  p.name = "WADI";
  p.dims = 127;
  p.train_length = Scaled(2500, scale);
  p.test_length = Scaled(3000, scale);
  p.outlier_ratio = 0.0576;
  p.num_latents = 5;
  p.latent_weight = 0.9;  // strongly correlated hydraulic network
  p.period_base = 250.0;  // daily demand cycle
  p.num_modes = 2;        // demand regimes
  p.mode_period = 400.0;
  p.harmonics = 2;
  p.noise = 0.07;
  p.mix = {0.05, 0.2, 0.05, 0.45, 0.25};  // intrusions: replayed/frozen readings
  p.seed = seed;
  return p;
}

}  // namespace data
}  // namespace caee

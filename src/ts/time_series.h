// Multivariate time series container.
//
// A TimeSeries is a (length x dims) row-major matrix of float observations
// plus optional per-observation binary outlier labels (used for evaluation
// only — the detectors never see them).

#ifndef CAEE_TS_TIME_SERIES_H_
#define CAEE_TS_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace caee {
namespace ts {

class TimeSeries {
 public:
  TimeSeries() : length_(0), dims_(0) {}
  TimeSeries(int64_t length, int64_t dims);

  int64_t length() const { return length_; }
  int64_t dims() const { return dims_; }
  bool empty() const { return length_ == 0; }

  float value(int64_t t, int64_t d) const;
  float& value(int64_t t, int64_t d);

  /// \brief Pointer to the start of observation t (dims() floats).
  const float* row(int64_t t) const;
  float* row(int64_t t);

  bool has_labels() const { return !labels_.empty(); }
  /// \brief 1 = outlier, 0 = inlier. Requires has_labels().
  int label(int64_t t) const;
  void set_label(int64_t t, int label);
  /// \brief Allocate an all-inlier label vector.
  void EnableLabels();
  const std::vector<uint8_t>& labels() const { return labels_; }

  /// \brief Fraction of labelled observations marked outlier (0 if
  /// unlabeled).
  double OutlierRatio() const;

  /// \brief Sub-series [begin, end) (copies; labels preserved if present).
  StatusOr<TimeSeries> Slice(int64_t begin, int64_t end) const;

  /// \brief Keep every `stride`-th observation (paper samples WADI at 1/10).
  TimeSeries Downsample(int64_t stride) const;

  /// \brief Copy the raw values into a (length, dims) Tensor.
  Tensor ToTensor() const;

  std::vector<float>& values() { return values_; }
  const std::vector<float>& values() const { return values_; }

 private:
  int64_t length_;
  int64_t dims_;
  std::vector<float> values_;   // length * dims
  std::vector<uint8_t> labels_; // empty or size == length
};

/// \brief A named train/test pair as used throughout the evaluation.
struct Dataset {
  std::string name;
  TimeSeries train;  // unlabeled (labels ignored during training)
  TimeSeries test;   // labeled
};

}  // namespace ts
}  // namespace caee

#endif  // CAEE_TS_TIME_SERIES_H_

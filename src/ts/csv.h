// CSV I/O for TimeSeries. Format: one observation per line, `dims` float
// columns, optionally followed by a final integer label column. This is the
// seam through which the real ECG / SMD / MSL / SMAP / WADI files can be fed
// to the library in place of the synthetic generators.

#ifndef CAEE_TS_CSV_H_
#define CAEE_TS_CSV_H_

#include <string>

#include "ts/time_series.h"

namespace caee {
namespace ts {

/// \brief Write `series` to `path`; appends the label column when labels are
/// present.
Status WriteCsv(const TimeSeries& series, const std::string& path);

/// \brief Read a CSV written by WriteCsv (or any numeric CSV). If
/// `has_labels`, the last column is parsed as the binary outlier label and
/// must be exactly 0 or 1. A first line whose cells are all non-numeric
/// ("timestamp,sensor_a,label") is treated as a header and skipped; a
/// mixed first line is an error, not a header. Missing values (empty
/// cells, including the trailing-comma form), partial numbers ("1.5abc"),
/// NaN/Inf, and ragged rows are rejected with a Status naming the line and
/// column. Shared by caee_train and eval_gauntlet (docs/evaluation.md).
StatusOr<TimeSeries> ReadCsv(const std::string& path, bool has_labels);

}  // namespace ts
}  // namespace caee

#endif  // CAEE_TS_CSV_H_

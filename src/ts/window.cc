#include "ts/window.h"

namespace caee {
namespace ts {

WindowDataset::WindowDataset(const TimeSeries& series, int64_t window)
    : series_(&series),
      window_(window),
      dims_(series.dims()),
      num_windows_(series.length() - window + 1) {
  CAEE_CHECK_MSG(window >= 1, "window must be >= 1");
  CAEE_CHECK_MSG(series.length() >= window,
                 "series length " << series.length() << " < window "
                                  << window);
}

Tensor WindowDataset::GetWindow(int64_t i) const {
  return GetBatch({i});
}

Tensor WindowDataset::GetBatch(const std::vector<int64_t>& indices) const {
  const int64_t b = static_cast<int64_t>(indices.size());
  // Every row is copied below, so skip the zero-fill pass: this materialises
  // each training/scoring batch and runs once per batch per epoch per model.
  Tensor out = Tensor::Uninitialized(Shape{b, window_, dims_});
  for (int64_t bi = 0; bi < b; ++bi) {
    const int64_t start = indices[static_cast<size_t>(bi)];
    CAEE_CHECK_MSG(start >= 0 && start < num_windows_,
                   "window index out of range: " << start);
    const float* src = series_->row(start);
    std::copy(src, src + window_ * dims_,
              out.data() + bi * window_ * dims_);
  }
  return out;
}

std::vector<std::vector<int64_t>> WindowDataset::Batches(
    int64_t batch_size) const {
  CAEE_CHECK_MSG(batch_size >= 1, "batch_size must be >= 1");
  std::vector<std::vector<int64_t>> out;
  for (int64_t begin = 0; begin < num_windows_; begin += batch_size) {
    const int64_t end = std::min(num_windows_, begin + batch_size);
    std::vector<int64_t> batch;
    batch.reserve(static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) batch.push_back(i);
    out.push_back(std::move(batch));
  }
  return out;
}

std::pair<TimeSeries, TimeSeries> TrainValSplit(const TimeSeries& series,
                                                double val_fraction) {
  CAEE_CHECK_MSG(val_fraction >= 0.0 && val_fraction < 1.0,
                 "val_fraction must be in [0, 1)");
  const int64_t n = series.length();
  const int64_t split =
      n - static_cast<int64_t>(static_cast<double>(n) * val_fraction);
  auto train = series.Slice(0, split);
  auto val = series.Slice(split, n);
  CAEE_CHECK(train.ok() && val.ok());
  return {std::move(train).value(), std::move(val).value()};
}

}  // namespace ts
}  // namespace caee

// Per-dimension z-score scaling (paper pre-processing: z = (x - mu) / sigma
// with statistics computed on the training series).

#ifndef CAEE_TS_SCALER_H_
#define CAEE_TS_SCALER_H_

#include <vector>

#include "ts/time_series.h"

namespace caee {
namespace ts {

class Scaler {
 public:
  /// \brief Compute per-dimension mean / stddev from `train`. Dimensions with
  /// zero variance get sigma = 1 so they pass through unchanged.
  void Fit(const TimeSeries& train);

  /// \brief Apply z = (x - mu) / sigma. Requires a prior Fit with matching
  /// dimensionality.
  TimeSeries Transform(const TimeSeries& series) const;

  /// \brief Invert the scaling.
  TimeSeries InverseTransform(const TimeSeries& series) const;

  /// \brief Restore fitted statistics (e.g. from a persisted ensemble
  /// artifact). The vectors must be the same non-zero size, every stddev
  /// strictly positive and all values finite — the invariants Fit
  /// establishes.
  Status Restore(std::vector<double> mean, std::vector<double> stddev);

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace ts
}  // namespace caee

#endif  // CAEE_TS_SCALER_H_

#include "ts/csv.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace caee {
namespace ts {

Status WriteCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  // max_digits10 significant digits make the float -> text -> float round
  // trip exact, so a series written here and re-read scores identically
  // (the caee_train / caee_serve contract depends on this).
  out.precision(std::numeric_limits<float>::max_digits10);
  for (int64_t t = 0; t < series.length(); ++t) {
    const float* row = series.row(t);
    for (int64_t j = 0; j < series.dims(); ++j) {
      if (j) out << ',';
      out << row[j];
    }
    if (series.has_labels()) out << ',' << series.label(t);
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<TimeSeries> ReadCsv(const std::string& path, bool has_labels) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<std::vector<float>> rows;
  std::string line;
  int64_t cols = -1;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<float> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stof(cell));
      } catch (...) {
        return Status::IOError("non-numeric cell in " + path + ": " + cell);
      }
    }
    if (cols == -1) {
      cols = static_cast<int64_t>(row.size());
      if (cols == 0 || (has_labels && cols < 2)) {
        return Status::IOError("too few columns in " + path);
      }
    } else if (static_cast<int64_t>(row.size()) != cols) {
      return Status::IOError("ragged CSV in " + path);
    }
    rows.push_back(std::move(row));
  }
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t dims = has_labels ? cols - 1 : cols;
  TimeSeries series(n, dims < 0 ? 0 : dims);
  if (has_labels) series.EnableLabels();
  for (int64_t t = 0; t < n; ++t) {
    for (int64_t j = 0; j < dims; ++j) {
      series.value(t, j) = rows[static_cast<size_t>(t)][static_cast<size_t>(j)];
    }
    if (has_labels) {
      series.set_label(
          t, rows[static_cast<size_t>(t)][static_cast<size_t>(dims)] != 0.0f);
    }
  }
  return series;
}

}  // namespace ts
}  // namespace caee

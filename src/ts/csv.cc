#include "ts/csv.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <vector>

namespace caee {
namespace ts {

namespace {

// Split one line on commas, KEEPING empty fields: "1,2," is three cells the
// last of which is missing, not a two-cell row. (The stringstream/getline
// idiom silently drops that trailing empty field, turning a missing value
// into a ragged-row error two lines later — or worse, into a silently
// narrower matrix on the first line.)
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  size_t begin = 0;
  for (;;) {
    const size_t comma = line.find(',', begin);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(begin));
      break;
    }
    cells.push_back(line.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return cells;
}

std::string Trim(const std::string& cell) {
  size_t begin = 0, end = cell.size();
  while (begin < end && (cell[begin] == ' ' || cell[begin] == '\t')) ++begin;
  while (end > begin && (cell[end - 1] == ' ' || cell[end - 1] == '\t' ||
                         cell[end - 1] == '\r')) {
    --end;
  }
  return cell.substr(begin, end - begin);
}

// Strict full-cell float parse: the entire trimmed cell must be consumed
// and the value must be finite. "1.5abc", "", "nan" and "inf" all fail —
// a sensor file containing any of those needs the caller's attention, not
// a silent partial parse.
bool ParseFloat(const std::string& trimmed, float* out) {
  if (trimmed.empty()) return false;
  const char* begin = trimmed.c_str();
  char* end = nullptr;
  const float value = std::strtof(begin, &end);
  if (end != begin + trimmed.size()) return false;
  if (!(value == value) ||
      value > std::numeric_limits<float>::max() ||
      value < std::numeric_limits<float>::lowest()) {
    return false;
  }
  *out = value;
  return true;
}

std::string CellError(const std::string& path, size_t line_number,
                      size_t column, const std::string& cell) {
  const std::string shown = cell.empty() ? "<empty>" : cell;
  return path + ": line " + std::to_string(line_number) + ", column " +
         std::to_string(column + 1) +
         (cell.empty() ? ": missing value" : ": bad value '" + shown + "'") +
         " (cells must be finite numbers; missing values are not supported)";
}

}  // namespace

Status WriteCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  // max_digits10 significant digits make the float -> text -> float round
  // trip exact, so a series written here and re-read scores identically
  // (the caee_train / caee_serve contract depends on this).
  out.precision(std::numeric_limits<float>::max_digits10);
  for (int64_t t = 0; t < series.length(); ++t) {
    const float* row = series.row(t);
    for (int64_t j = 0; j < series.dims(); ++j) {
      if (j) out << ',';
      out << row[j];
    }
    if (series.has_labels()) out << ',' << series.label(t);
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<TimeSeries> ReadCsv(const std::string& path, bool has_labels) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<std::vector<float>> rows;
  std::string line;
  int64_t cols = -1;
  size_t line_number = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cells = SplitLine(line);

    // Header auto-detection: a first line whose every cell is non-numeric
    // ("timestamp,sensor_a,label") is skipped. A *mixed* first line
    // ("1,abc") is not a header — it falls through to the cell error
    // below, because silently skipping it would hide a corrupt file.
    if (first_data_line) {
      first_data_line = false;  // only the very first line can be a header
      bool any_numeric = false;
      float ignored;
      for (const auto& cell : cells) {
        any_numeric |= ParseFloat(Trim(cell), &ignored);
      }
      if (!any_numeric) continue;
    }

    std::vector<float> row(cells.size());
    for (size_t j = 0; j < cells.size(); ++j) {
      const std::string trimmed = Trim(cells[j]);
      if (!ParseFloat(trimmed, &row[j])) {
        return Status::IOError(CellError(path, line_number, j, trimmed));
      }
    }
    if (cols == -1) {
      cols = static_cast<int64_t>(row.size());
      if (has_labels && cols < 2) {
        return Status::IOError(path + ": labelled CSV needs >= 2 columns, got " +
                               std::to_string(cols));
      }
    } else if (static_cast<int64_t>(row.size()) != cols) {
      return Status::IOError(path + ": line " + std::to_string(line_number) +
                             ": ragged row (" + std::to_string(row.size()) +
                             " cells, expected " + std::to_string(cols) + ")");
    }
    rows.push_back(std::move(row));
  }
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t dims = has_labels ? cols - 1 : cols;
  TimeSeries series(n, dims < 0 ? 0 : dims);
  if (has_labels) series.EnableLabels();
  for (int64_t t = 0; t < n; ++t) {
    for (int64_t j = 0; j < dims; ++j) {
      series.value(t, j) = rows[static_cast<size_t>(t)][static_cast<size_t>(j)];
    }
    if (has_labels) {
      // The label column is binary ground truth: require exactly 0 or 1
      // rather than coercing arbitrary numbers, so a shifted column order
      // (labels mid-file, values at the end) fails loudly.
      const float raw = rows[static_cast<size_t>(t)][static_cast<size_t>(dims)];
      if (raw != 0.0f && raw != 1.0f) {
        return Status::IOError(path + ": label column contains " +
                               std::to_string(raw) +
                               " at observation " + std::to_string(t) +
                               "; labels must be 0 or 1");
      }
      series.set_label(t, raw != 0.0f);
    }
  }
  return series;
}

}  // namespace ts
}  // namespace caee

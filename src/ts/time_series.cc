#include "ts/time_series.h"

namespace caee {
namespace ts {

TimeSeries::TimeSeries(int64_t length, int64_t dims)
    : length_(length), dims_(dims) {
  CAEE_CHECK_MSG(length >= 0 && dims >= 0, "negative series extents");
  values_.assign(static_cast<size_t>(length * dims), 0.0f);
}

float TimeSeries::value(int64_t t, int64_t d) const {
  CAEE_CHECK(t >= 0 && t < length_ && d >= 0 && d < dims_);
  return values_[static_cast<size_t>(t * dims_ + d)];
}

float& TimeSeries::value(int64_t t, int64_t d) {
  CAEE_CHECK(t >= 0 && t < length_ && d >= 0 && d < dims_);
  return values_[static_cast<size_t>(t * dims_ + d)];
}

const float* TimeSeries::row(int64_t t) const {
  CAEE_CHECK(t >= 0 && t < length_);
  return values_.data() + t * dims_;
}

float* TimeSeries::row(int64_t t) {
  CAEE_CHECK(t >= 0 && t < length_);
  return values_.data() + t * dims_;
}

int TimeSeries::label(int64_t t) const {
  CAEE_CHECK_MSG(has_labels(), "series has no labels");
  CAEE_CHECK(t >= 0 && t < length_);
  return labels_[static_cast<size_t>(t)];
}

void TimeSeries::set_label(int64_t t, int label) {
  if (labels_.empty()) EnableLabels();
  CAEE_CHECK(t >= 0 && t < length_);
  labels_[static_cast<size_t>(t)] = static_cast<uint8_t>(label != 0);
}

void TimeSeries::EnableLabels() {
  labels_.assign(static_cast<size_t>(length_), 0);
}

double TimeSeries::OutlierRatio() const {
  if (!has_labels() || length_ == 0) return 0.0;
  int64_t count = 0;
  for (uint8_t l : labels_) count += l;
  return static_cast<double>(count) / static_cast<double>(length_);
}

StatusOr<TimeSeries> TimeSeries::Slice(int64_t begin, int64_t end) const {
  if (begin < 0 || begin > end || end > length_) {
    return Status::OutOfRange("Slice range invalid");
  }
  TimeSeries out(end - begin, dims_);
  std::copy(values_.begin() + begin * dims_, values_.begin() + end * dims_,
            out.values_.begin());
  if (has_labels()) {
    out.labels_.assign(labels_.begin() + begin, labels_.begin() + end);
  }
  return out;
}

TimeSeries TimeSeries::Downsample(int64_t stride) const {
  CAEE_CHECK_MSG(stride >= 1, "stride must be >= 1");
  const int64_t new_len = (length_ + stride - 1) / stride;
  TimeSeries out(new_len, dims_);
  if (has_labels()) out.EnableLabels();
  for (int64_t i = 0; i < new_len; ++i) {
    const int64_t src = i * stride;
    std::copy(row(src), row(src) + dims_, out.row(i));
    if (has_labels()) out.set_label(i, label(src));
  }
  return out;
}

Tensor TimeSeries::ToTensor() const {
  Tensor t(Shape{length_, dims_});
  std::copy(values_.begin(), values_.end(), t.vec().begin());
  return t;
}

}  // namespace ts
}  // namespace caee

// Sliding-window view over a TimeSeries (stride 1, paper Sec. 3 pre-
// processing) and batching into (B, w, D) tensors for the models.

#ifndef CAEE_TS_WINDOW_H_
#define CAEE_TS_WINDOW_H_

#include <utility>
#include <vector>

#include "ts/time_series.h"

namespace caee {
namespace ts {

class WindowDataset {
 public:
  /// \brief Windows of size `window` sliding one observation at a time.
  /// Requires series.length() >= window.
  WindowDataset(const TimeSeries& series, int64_t window);

  int64_t num_windows() const { return num_windows_; }
  int64_t window() const { return window_; }
  int64_t dims() const { return dims_; }

  /// \brief Time index of the last observation of window i.
  int64_t LastObservationIndex(int64_t i) const { return i + window_ - 1; }

  /// \brief Materialise window i as a (1, w, D) tensor.
  Tensor GetWindow(int64_t i) const;

  /// \brief Materialise windows `indices` as a (B, w, D) tensor.
  Tensor GetBatch(const std::vector<int64_t>& indices) const;

  /// \brief All contiguous batches of at most `batch_size` windows,
  /// in window order.
  std::vector<std::vector<int64_t>> Batches(int64_t batch_size) const;

 private:
  const TimeSeries* series_;
  int64_t window_;
  int64_t dims_;
  int64_t num_windows_;
};

/// \brief Chronological train/validation split: the first (1 - val_fraction)
/// of the series is training, the remainder validation (paper reserves the
/// trailing 30 % of the training set).
std::pair<TimeSeries, TimeSeries> TrainValSplit(const TimeSeries& series,
                                                double val_fraction);

}  // namespace ts
}  // namespace caee

#endif  // CAEE_TS_WINDOW_H_

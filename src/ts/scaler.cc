#include "ts/scaler.h"

#include <cmath>
#include <string>
#include <utility>

namespace caee {
namespace ts {

void Scaler::Fit(const TimeSeries& train) {
  const int64_t n = train.length();
  const int64_t d = train.dims();
  mean_.assign(static_cast<size_t>(d), 0.0);
  stddev_.assign(static_cast<size_t>(d), 1.0);
  if (n == 0) return;
  for (int64_t t = 0; t < n; ++t) {
    const float* row = train.row(t);
    for (int64_t j = 0; j < d; ++j) mean_[static_cast<size_t>(j)] += row[j];
  }
  for (auto& m : mean_) m /= static_cast<double>(n);
  std::vector<double> var(static_cast<size_t>(d), 0.0);
  for (int64_t t = 0; t < n; ++t) {
    const float* row = train.row(t);
    for (int64_t j = 0; j < d; ++j) {
      const double diff = row[j] - mean_[static_cast<size_t>(j)];
      var[static_cast<size_t>(j)] += diff * diff;
    }
  }
  for (int64_t j = 0; j < d; ++j) {
    const double v = var[static_cast<size_t>(j)] / static_cast<double>(n);
    stddev_[static_cast<size_t>(j)] = v > 1e-12 ? std::sqrt(v) : 1.0;
  }
}

Status Scaler::Restore(std::vector<double> mean, std::vector<double> stddev) {
  if (mean.empty() || mean.size() != stddev.size()) {
    return Status::InvalidArgument(
        "scaler state must have matching non-empty mean/stddev vectors");
  }
  for (size_t j = 0; j < mean.size(); ++j) {
    if (!std::isfinite(mean[j]) || !std::isfinite(stddev[j]) ||
        stddev[j] <= 0.0) {
      return Status::InvalidArgument(
          "scaler state has non-finite or non-positive entries at dim " +
          std::to_string(j));
    }
  }
  mean_ = std::move(mean);
  stddev_ = std::move(stddev);
  return Status::OK();
}

TimeSeries Scaler::Transform(const TimeSeries& series) const {
  CAEE_CHECK_MSG(fitted(), "Scaler::Transform before Fit");
  CAEE_CHECK_MSG(series.dims() == static_cast<int64_t>(mean_.size()),
                 "dimension mismatch in Transform");
  TimeSeries out = series;
  for (int64_t t = 0; t < out.length(); ++t) {
    float* row = out.row(t);
    for (int64_t j = 0; j < out.dims(); ++j) {
      row[j] = static_cast<float>(
          (row[j] - mean_[static_cast<size_t>(j)]) /
          stddev_[static_cast<size_t>(j)]);
    }
  }
  return out;
}

TimeSeries Scaler::InverseTransform(const TimeSeries& series) const {
  CAEE_CHECK_MSG(fitted(), "Scaler::InverseTransform before Fit");
  CAEE_CHECK_MSG(series.dims() == static_cast<int64_t>(mean_.size()),
                 "dimension mismatch in InverseTransform");
  TimeSeries out = series;
  for (int64_t t = 0; t < out.length(); ++t) {
    float* row = out.row(t);
    for (int64_t j = 0; j < out.dims(); ++j) {
      row[j] = static_cast<float>(row[j] * stddev_[static_cast<size_t>(j)] +
                                  mean_[static_cast<size_t>(j)]);
    }
  }
  return out;
}

}  // namespace ts
}  // namespace caee

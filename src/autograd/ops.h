// Differentiable operation library over ag::Var.
//
// Every op builds one graph node whose closure implements the exact adjoint
// of the forward kernel in tensor_ops. All ops are validated against central
// finite differences in tests/autograd_test.cc.

#ifndef CAEE_AUTOGRAD_OPS_H_
#define CAEE_AUTOGRAD_OPS_H_

#include "autograd/variable.h"

namespace caee {
namespace ag {

// Elementwise ----------------------------------------------------------------
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Scale(const Var& a, float s);
Var Neg(const Var& a);
/// \brief x + bias, bias broadcast over leading dims.
Var AddBias(const Var& x, const Var& bias);

Var Sigmoid(const Var& x);
Var Tanh(const Var& x);
Var Relu(const Var& x);
Var Exp(const Var& x);
Var Log(const Var& x);
/// \brief Identity for the forward value; gradient passes unchanged. Useful
/// for configurable activation slots.
Var Identity(const Var& x);

/// \brief Softmax over the last dimension.
Var SoftmaxLastDim(const Var& x);

// Linear algebra -------------------------------------------------------------
Var MatMul(const Var& a, const Var& b, bool trans_a = false,
           bool trans_b = false);
Var BatchedMatMul(const Var& a, const Var& b, bool trans_a = false,
                  bool trans_b = false);

// Convolution ----------------------------------------------------------------
/// \brief 1-D convolution, x (B,W,Cin), w (Cout,K,Cin), bias (Cout).
Var Conv1d(const Var& x, const Var& w, const Var& bias, int64_t pad_left,
           int64_t pad_right);

// Shape / sequence -----------------------------------------------------------
Var Reshape(const Var& x, Shape new_shape);
/// \brief Tile a rank-2 (W,D) tensor into (batch,W,D); the gradient sums
/// over the batch dimension. Used to add per-window position embeddings.
Var BroadcastBatch(const Var& x, int64_t batch);
Var ShiftTimeRight(const Var& x, int64_t steps);
Var SliceLastDim(const Var& x, int64_t begin, int64_t end);
Var ConcatLastDim(const Var& a, const Var& b);

// Reductions / losses --------------------------------------------------------
/// \brief Scalar sum of all elements.
Var Sum(const Var& x);
/// \brief Scalar mean of all elements.
Var Mean(const Var& x);
/// \brief mean((pred - target)^2) as a scalar. Gradients flow to both
/// arguments (detach the target if it should be constant).
Var MseLoss(const Var& pred, const Var& target);

}  // namespace ag
}  // namespace caee

#endif  // CAEE_AUTOGRAD_OPS_H_

#include "autograd/variable.h"

#include <unordered_set>
#include <utility>

#include "tensor/tensor_ops.h"

namespace caee {
namespace ag {

Tensor& Variable::grad() {
  if (!grad_) grad_ = std::make_unique<Tensor>(value_.shape());
  return *grad_;
}

const Tensor& Variable::grad_or_zero() const {
  static const Tensor* empty = new Tensor(Shape{0});
  if (!grad_) return *empty;
  return *grad_;
}

void Variable::AccumulateGrad(const Tensor& g) {
  CAEE_CHECK_MSG(g.SameShape(value_),
                 "gradient shape " << ShapeToString(g.shape())
                                   << " != value shape "
                                   << ShapeToString(value_.shape()));
  if (!grad_) {
    grad_ = std::make_unique<Tensor>(g);  // copy beats zero-fill + add
    return;
  }
  ops::AddInPlace(g, grad_.get());
}

void Variable::AccumulateGrad(Tensor&& g) {
  CAEE_CHECK_MSG(g.SameShape(value_),
                 "gradient shape " << ShapeToString(g.shape())
                                   << " != value shape "
                                   << ShapeToString(value_.shape()));
  if (!grad_) {
    grad_ = std::make_unique<Tensor>(std::move(g));
    return;
  }
  ops::AddInPlace(g, grad_.get());
}

void Variable::ZeroGrad() { grad_.reset(); }

Var Constant(Tensor value) {
  return std::make_shared<Variable>(std::move(value), /*requires_grad=*/false);
}

Var Param(Tensor value) {
  return std::make_shared<Variable>(std::move(value), /*requires_grad=*/true);
}

Var Detach(const Var& v) { return Constant(v->value()); }

namespace {

// Iterative post-order DFS producing a topological order (parents before
// children in the returned vector; we then walk it in reverse).
std::vector<Variable*> TopoOrder(const Var& root) {
  std::vector<Variable*> order;
  std::unordered_set<Variable*> visited;
  struct Frame {
    Variable* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) {
    stack.push_back({root.get(), 0});
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents().size()) {
      Variable* parent = top.node->parents()[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;  // post-order: parents precede children
}

}  // namespace

void Backward(const Var& root, const Tensor* seed) {
  CAEE_CHECK_MSG(root != nullptr, "Backward on null root");
  if (seed != nullptr) {
    root->AccumulateGrad(*seed);
  } else {
    CAEE_CHECK_MSG(root->value().numel() == 1,
                   "Backward without seed requires a scalar root");
    Tensor ones(root->value().shape());
    ones.Fill(1.0f);
    root->AccumulateGrad(std::move(ones));
  }
  std::vector<Variable*> order = TopoOrder(root);
  // Reverse topological: children (outputs) first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    (*it)->RunBackward();
  }
}

void ZeroGradGraph(const Var& root) {
  for (Variable* v : TopoOrder(root)) v->ZeroGrad();
}

}  // namespace ag
}  // namespace caee

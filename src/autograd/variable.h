// Reverse-mode automatic differentiation.
//
// A Variable is a node in a dynamically-built computation graph: it owns its
// forward value, a lazily-allocated gradient buffer, strong references to its
// parents, and a closure that pushes its gradient to those parents. Calling
// Backward(root) runs a topological sweep from the root (typically a scalar
// loss) and fills every reachable Variable's grad.

#ifndef CAEE_AUTOGRAD_VARIABLE_H_
#define CAEE_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace caee {
namespace ag {

class Variable;
using Var = std::shared_ptr<Variable>;

class Variable {
 public:
  /// \brief Leaf constructor. Prefer Constant() / Param() helpers.
  explicit Variable(Tensor value, bool requires_grad = false)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }
  void set_requires_grad(bool rg) { requires_grad_ = rg; }

  /// \brief True once a gradient buffer has been allocated.
  bool has_grad() const { return grad_ != nullptr; }

  /// \brief Gradient tensor; allocates a zero buffer on first use.
  Tensor& grad();
  const Tensor& grad_or_zero() const;

  /// \brief dL/dthis += g.
  void AccumulateGrad(const Tensor& g);

  /// \brief dL/dthis += g, taking ownership. The first accumulation into a
  /// node adopts `g` as the gradient buffer outright — no zero-filled
  /// allocation, no add pass. Backward closures pass their freshly computed
  /// gradient tensors through this overload, which makes the common
  /// single-consumer case allocation- and traversal-free.
  void AccumulateGrad(Tensor&& g);

  /// \brief Drop the gradient buffer (used between optimiser steps).
  void ZeroGrad();

  /// \brief True for graph-interior nodes produced by an op.
  bool is_interior() const { return static_cast<bool>(backward_fn_); }

  const std::vector<Var>& parents() const { return parents_; }

  /// \brief Install op metadata; used by the op library only.
  void SetOp(std::vector<Var> parents, std::function<void(Variable*)> fn) {
    parents_ = std::move(parents);
    backward_fn_ = std::move(fn);
  }

  void RunBackward() {
    if (backward_fn_) backward_fn_(this);
  }

 private:
  Tensor value_;
  std::unique_ptr<Tensor> grad_;
  bool requires_grad_;
  std::vector<Var> parents_;
  std::function<void(Variable*)> backward_fn_;
};

/// \brief Leaf that does not require a gradient (inputs, targets).
Var Constant(Tensor value);

/// \brief Leaf that requires a gradient (trainable parameters).
Var Param(Tensor value);

/// \brief A constant view of an existing variable's value: gradients stop
/// here. Used to freeze the ensemble output F(X) inside the diversity term.
Var Detach(const Var& v);

/// \brief Run reverse-mode AD from `root`. If seed is null the root must be
/// a single-element tensor and is seeded with 1.
void Backward(const Var& root, const Tensor* seed = nullptr);

/// \brief Zero the gradients of every node reachable from `root`.
void ZeroGradGraph(const Var& root);

}  // namespace ag
}  // namespace caee

#endif  // CAEE_AUTOGRAD_VARIABLE_H_

#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "tensor/tensor_ops.h"

namespace caee {
namespace ag {

namespace {

inline bool NeedsGrad(const Var& v) {
  return v->requires_grad() || v->is_interior();
}

Var MakeNode(Tensor value, std::vector<Var> parents,
             std::function<void(Variable*)> backward) {
  Var out = std::make_shared<Variable>(std::move(value));
  out->SetOp(std::move(parents), std::move(backward));
  return out;
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  return MakeNode(ops::Add(a->value(), b->value()), {a, b},
                  [a, b](Variable* self) {
                    if (NeedsGrad(a)) a->AccumulateGrad(self->grad());
                    if (NeedsGrad(b)) b->AccumulateGrad(self->grad());
                  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeNode(ops::Sub(a->value(), b->value()), {a, b},
                  [a, b](Variable* self) {
                    if (NeedsGrad(a)) a->AccumulateGrad(self->grad());
                    if (NeedsGrad(b)) {
                      b->AccumulateGrad(ops::Scale(self->grad(), -1.0f));
                    }
                  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeNode(ops::Mul(a->value(), b->value()), {a, b},
                  [a, b](Variable* self) {
                    if (NeedsGrad(a)) {
                      a->AccumulateGrad(ops::Mul(self->grad(), b->value()));
                    }
                    if (NeedsGrad(b)) {
                      b->AccumulateGrad(ops::Mul(self->grad(), a->value()));
                    }
                  });
}

Var Scale(const Var& a, float s) {
  return MakeNode(ops::Scale(a->value(), s), {a}, [a, s](Variable* self) {
    if (NeedsGrad(a)) a->AccumulateGrad(ops::Scale(self->grad(), s));
  });
}

Var Neg(const Var& a) { return Scale(a, -1.0f); }

Var AddBias(const Var& x, const Var& bias) {
  return MakeNode(ops::AddBias(x->value(), bias->value()), {x, bias},
                  [x, bias](Variable* self) {
                    if (NeedsGrad(x)) x->AccumulateGrad(self->grad());
                    if (NeedsGrad(bias)) {
                      // Reduce straight into the bias gradient buffer
                      // (AddBiasBackward accumulates) — no temp tensor.
                      ops::AddBiasBackward(self->grad(), &bias->grad());
                    }
                  });
}

Var Sigmoid(const Var& x) {
  Tensor y = ops::Sigmoid(x->value());
  return MakeNode(std::move(y), {x}, [x](Variable* self) {
    if (!NeedsGrad(x)) return;
    const Tensor& yv = self->value();
    const Tensor& dy = self->grad();
    Tensor dx = Tensor::Uninitialized(yv.shape());
    const float* py = yv.data();
    const float* pdy = dy.data();
    float* pdx = dx.data();
    const int64_t n = yv.numel();
    for (int64_t i = 0; i < n; ++i) {
      pdx[i] = pdy[i] * py[i] * (1.0f - py[i]);
    }
    x->AccumulateGrad(std::move(dx));
  });
}

Var Tanh(const Var& x) {
  Tensor y = ops::Tanh(x->value());
  return MakeNode(std::move(y), {x}, [x](Variable* self) {
    if (!NeedsGrad(x)) return;
    const Tensor& yv = self->value();
    const Tensor& dy = self->grad();
    Tensor dx = Tensor::Uninitialized(yv.shape());
    const float* py = yv.data();
    const float* pdy = dy.data();
    float* pdx = dx.data();
    const int64_t n = yv.numel();
    for (int64_t i = 0; i < n; ++i) {
      pdx[i] = pdy[i] * (1.0f - py[i] * py[i]);
    }
    x->AccumulateGrad(std::move(dx));
  });
}

Var Relu(const Var& x) {
  Tensor y = ops::Relu(x->value());
  return MakeNode(std::move(y), {x}, [x](Variable* self) {
    if (!NeedsGrad(x)) return;
    const Tensor& xv = x->value();
    const Tensor& dy = self->grad();
    Tensor dx = Tensor::Uninitialized(xv.shape());
    const float* px = xv.data();
    const float* pdy = dy.data();
    float* pdx = dx.data();
    const int64_t n = xv.numel();
    for (int64_t i = 0; i < n; ++i) {
      pdx[i] = px[i] > 0.0f ? pdy[i] : 0.0f;
    }
    x->AccumulateGrad(std::move(dx));
  });
}

Var Exp(const Var& x) {
  Tensor y = ops::Exp(x->value());
  return MakeNode(std::move(y), {x}, [x](Variable* self) {
    if (!NeedsGrad(x)) return;
    x->AccumulateGrad(ops::Mul(self->grad(), self->value()));
  });
}

Var Log(const Var& x) {
  Tensor y = ops::Log(x->value());
  return MakeNode(std::move(y), {x}, [x](Variable* self) {
    if (!NeedsGrad(x)) return;
    const Tensor& xv = x->value();
    const Tensor& dy = self->grad();
    Tensor dx = Tensor::Uninitialized(xv.shape());
    const float* px = xv.data();
    const float* pdy = dy.data();
    float* pdx = dx.data();
    const int64_t n = xv.numel();
    for (int64_t i = 0; i < n; ++i) pdx[i] = pdy[i] / px[i];
    x->AccumulateGrad(std::move(dx));
  });
}

Var Identity(const Var& x) {
  return MakeNode(x->value(), {x}, [x](Variable* self) {
    if (NeedsGrad(x)) x->AccumulateGrad(self->grad());
  });
}

Var SoftmaxLastDim(const Var& x) {
  Tensor y = ops::SoftmaxLastDim(x->value());
  return MakeNode(std::move(y), {x}, [x](Variable* self) {
    if (!NeedsGrad(x)) return;
    const Tensor& yv = self->value();
    const Tensor& dy = self->grad();
    const int64_t d = yv.dim(yv.rank() - 1);
    const int64_t rows = yv.numel() / d;
    Tensor dx = Tensor::Uninitialized(yv.shape());
    for (int64_t r = 0; r < rows; ++r) {
      const float* yr = yv.data() + r * d;
      const float* dyr = dy.data() + r * d;
      float* dxr = dx.data() + r * d;
      double dot = 0.0;
      for (int64_t j = 0; j < d; ++j) dot += double(dyr[j]) * yr[j];
      for (int64_t j = 0; j < d; ++j) {
        dxr[j] = yr[j] * (dyr[j] - static_cast<float>(dot));
      }
    }
    x->AccumulateGrad(std::move(dx));
  });
}

Var MatMul(const Var& a, const Var& b, bool trans_a, bool trans_b) {
  Tensor y = ops::MatMul(a->value(), b->value(), trans_a, trans_b);
  return MakeNode(std::move(y), {a, b},
                  [a, b, trans_a, trans_b](Variable* self) {
                    const Tensor& dc = self->grad();
                    if (NeedsGrad(a)) {
                      Tensor da =
                          trans_a
                              ? ops::MatMul(b->value(), dc, trans_b, true)
                              : ops::MatMul(dc, b->value(), false, !trans_b);
                      a->AccumulateGrad(std::move(da));
                    }
                    if (NeedsGrad(b)) {
                      Tensor db =
                          trans_b
                              ? ops::MatMul(dc, a->value(), true, trans_a)
                              : ops::MatMul(a->value(), dc, !trans_a, false);
                      b->AccumulateGrad(std::move(db));
                    }
                  });
}

Var BatchedMatMul(const Var& a, const Var& b, bool trans_a, bool trans_b) {
  Tensor y = ops::BatchedMatMul(a->value(), b->value(), trans_a, trans_b);
  return MakeNode(
      std::move(y), {a, b}, [a, b, trans_a, trans_b](Variable* self) {
        const Tensor& dc = self->grad();
        if (NeedsGrad(a)) {
          Tensor da =
              trans_a ? ops::BatchedMatMul(b->value(), dc, trans_b, true)
                      : ops::BatchedMatMul(dc, b->value(), false, !trans_b);
          a->AccumulateGrad(std::move(da));
        }
        if (NeedsGrad(b)) {
          Tensor db =
              trans_b ? ops::BatchedMatMul(dc, a->value(), true, trans_a)
                      : ops::BatchedMatMul(a->value(), dc, !trans_a, false);
          b->AccumulateGrad(std::move(db));
        }
      });
}

Var Conv1d(const Var& x, const Var& w, const Var& bias, int64_t pad_left,
           int64_t pad_right) {
  Tensor y = ops::Conv1d(x->value(), w->value(), bias->value(), pad_left,
                         pad_right);
  return MakeNode(
      std::move(y), {x, w, bias}, [x, w, bias, pad_left](Variable* self) {
        const Tensor& dy = self->grad();
        if (NeedsGrad(x)) {
          x->AccumulateGrad(ops::Conv1dBackwardInput(
              dy, w->value(), x->value().dim(1), pad_left));
        }
        if (NeedsGrad(w)) {
          w->AccumulateGrad(ops::Conv1dBackwardWeight(
              dy, x->value(), w->value().dim(1), pad_left));
        }
        if (NeedsGrad(bias)) {
          bias->AccumulateGrad(ops::Conv1dBackwardBias(dy));
        }
      });
}

Var Reshape(const Var& x, Shape new_shape) {
  StatusOr<Tensor> reshaped = x->value().Reshape(new_shape);
  CAEE_CHECK_MSG(reshaped.ok(), reshaped.status().ToString());
  Shape old_shape = x->value().shape();
  return MakeNode(std::move(reshaped).value(), {x},
                  [x, old_shape](Variable* self) {
                    if (!NeedsGrad(x)) return;
                    StatusOr<Tensor> back = self->grad().Reshape(old_shape);
                    CAEE_CHECK(back.ok());
                    x->AccumulateGrad(std::move(back).value());
                  });
}

Var BroadcastBatch(const Var& x, int64_t batch) {
  const Tensor& xv = x->value();
  CAEE_CHECK_MSG(xv.rank() == 2, "BroadcastBatch expects rank-2 input");
  CAEE_CHECK_MSG(batch >= 1, "batch must be >= 1");
  const int64_t w = xv.dim(0), d = xv.dim(1);
  Tensor y = Tensor::Uninitialized(Shape{batch, w, d});
  for (int64_t b = 0; b < batch; ++b) {
    std::copy(xv.data(), xv.data() + w * d, y.data() + b * w * d);
  }
  return MakeNode(std::move(y), {x}, [x, batch, w, d](Variable* self) {
    if (!NeedsGrad(x)) return;
    const Tensor& dy = self->grad();
    Tensor dx(Shape{w, d});
    float* pdx = dx.data();
    const int64_t n = w * d;
    for (int64_t b = 0; b < batch; ++b) {
      const float* src = dy.data() + b * n;
      for (int64_t i = 0; i < n; ++i) pdx[i] += src[i];
    }
    x->AccumulateGrad(std::move(dx));
  });
}

Var ShiftTimeRight(const Var& x, int64_t steps) {
  Tensor y = ops::ShiftTimeRight(x->value(), steps);
  return MakeNode(std::move(y), {x}, [x, steps](Variable* self) {
    if (!NeedsGrad(x)) return;
    x->AccumulateGrad(ops::ShiftTimeRightBackward(self->grad(), steps));
  });
}

Var SliceLastDim(const Var& x, int64_t begin, int64_t end) {
  Tensor y = ops::SliceLastDim(x->value(), begin, end);
  return MakeNode(std::move(y), {x}, [x, begin](Variable* self) {
    if (!NeedsGrad(x)) return;
    Tensor dx(x->value().shape());
    ops::SliceLastDimBackward(self->grad(), begin, &dx);
    x->AccumulateGrad(std::move(dx));
  });
}

Var ConcatLastDim(const Var& a, const Var& b) {
  Tensor y = ops::ConcatLastDim(a->value(), b->value());
  const int64_t da = a->value().dim(a->value().rank() - 1);
  const int64_t db = b->value().dim(b->value().rank() - 1);
  return MakeNode(std::move(y), {a, b}, [a, b, da, db](Variable* self) {
    const Tensor& dy = self->grad();
    if (NeedsGrad(a)) {
      a->AccumulateGrad(ops::SliceLastDim(dy, 0, da));
    }
    if (NeedsGrad(b)) {
      b->AccumulateGrad(ops::SliceLastDim(dy, da, da + db));
    }
  });
}

Var Sum(const Var& x) {
  Tensor y = Tensor::Scalar(static_cast<float>(x->value().Sum()));
  return MakeNode(std::move(y), {x}, [x](Variable* self) {
    if (!NeedsGrad(x)) return;
    const float g = self->grad()[0];
    Tensor dx(x->value().shape(), g);
    x->AccumulateGrad(std::move(dx));
  });
}

Var Mean(const Var& x) {
  Tensor y = Tensor::Scalar(static_cast<float>(x->value().Mean()));
  const float inv_n = x->value().numel() > 0
                          ? 1.0f / static_cast<float>(x->value().numel())
                          : 0.0f;
  return MakeNode(std::move(y), {x}, [x, inv_n](Variable* self) {
    if (!NeedsGrad(x)) return;
    const float g = self->grad()[0] * inv_n;
    Tensor dx(x->value().shape(), g);
    x->AccumulateGrad(std::move(dx));
  });
}

Var MseLoss(const Var& pred, const Var& target) {
  CAEE_CHECK_MSG(pred->value().SameShape(target->value()),
                 "MseLoss shape mismatch");
  const int64_t n = pred->value().numel();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = double(pred->value()[i]) - target->value()[i];
    acc += d * d;
  }
  Tensor y = Tensor::Scalar(n > 0 ? static_cast<float>(acc / n) : 0.0f);
  return MakeNode(std::move(y), {pred, target},
                  [pred, target, n](Variable* self) {
                    const float g = self->grad()[0];
                    const float scale = n > 0 ? 2.0f * g / n : 0.0f;
                    if (NeedsGrad(pred) && NeedsGrad(target)) {
                      Tensor diff =
                          ops::Sub(pred->value(), target->value());
                      pred->AccumulateGrad(ops::Scale(diff, scale));
                      target->AccumulateGrad(ops::Scale(diff, -scale));
                    } else if (NeedsGrad(pred)) {
                      Tensor diff =
                          ops::Sub(pred->value(), target->value());
                      for (int64_t i = 0; i < diff.numel(); ++i) {
                        diff[i] *= scale;
                      }
                      pred->AccumulateGrad(std::move(diff));
                    } else if (NeedsGrad(target)) {
                      Tensor diff =
                          ops::Sub(target->value(), pred->value());
                      for (int64_t i = 0; i < diff.numel(); ++i) {
                        diff[i] *= scale;
                      }
                      target->AccumulateGrad(std::move(diff));
                    }
                  });
}

}  // namespace ag
}  // namespace caee

#!/usr/bin/env python3
"""Compare a bench_micro_ops --caee_json run against the committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--max-ratio 2.0]

Fails (exit 1) if any (op, shape, threads, impl) entry present in both files
got slower than --max-ratio x the baseline ns/iter. The threshold is loose on
purpose: baselines are recorded on one machine and CI runs on another, so
only real kernel regressions (an accidentally de-vectorised loop, a lost
blocking path) should trip it, not runner-to-runner variance.

Checksum drift is reported as a warning, not a failure: matmul/conv
checksums are exact-order IEEE sums and should match across machines, but
libm-backed ops (sigmoid, softmax) legitimately differ between glibc
versions.
"""

import argparse
import json
import sys


def key(e):
    return (e["op"], e["shape"], e["threads"], e["impl"])


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-ratio", type=float, default=2.0)
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = {key(e): e for e in json.load(f)["entries"]}
    with open(args.current) as f:
        current = {key(e): e for e in json.load(f)["entries"]}

    failures = []
    warnings = []
    compared = 0
    # A baseline entry the current run no longer emits means the kernel the
    # gate protects is no longer measured — that is a failure, not a skip.
    for k in sorted(baseline.keys() - current.keys()):
        failures.append(f"{k}: present in baseline but missing from current run")
    for k, cur in sorted(current.items()):
        base = baseline.get(k)
        if base is None:
            warnings.append(f"new entry (no baseline): {k}")
            continue
        compared += 1
        ratio = cur["ns_per_iter"] / base["ns_per_iter"]
        marker = ""
        if ratio > args.max_ratio:
            failures.append(
                f"{k}: {base['ns_per_iter']:.0f} -> {cur['ns_per_iter']:.0f} "
                f"ns/iter ({ratio:.2f}x)"
            )
            marker = "  <-- REGRESSION"
        print(
            f"  {k[0]:<18} {k[1]:<22} t={k[2]} {k[3]:<6} "
            f"{base['ns_per_iter']:>12.0f} -> {cur['ns_per_iter']:>12.0f} "
            f"ns/iter ({ratio:5.2f}x){marker}"
        )
        b_ck, c_ck = base["checksum"], cur["checksum"]
        denom = max(abs(b_ck), abs(c_ck), 1e-30)
        if abs(b_ck - c_ck) / denom > 1e-6:
            warnings.append(f"checksum drift at {k}: {b_ck!r} -> {c_ck!r}")

    for w in warnings:
        print(f"WARNING: {w}", file=sys.stderr)
    if failures:
        print(
            f"\n{len(failures)} failure(s) (regressed more than "
            f"{args.max_ratio}x, or missing from the current run):",
            file=sys.stderr,
        )
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    if compared == 0:
        print("no entries compared — empty or disjoint bench runs",
              file=sys.stderr)
        return 1
    print(f"\nOK: {compared} entries within {args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare a bench --caee_json run against its committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--max-ratio 2.0]

Handles both JSON schemas the benches emit:

  bench_micro_ops    entries keyed by (op, shape, threads, impl), timed by
                     ns_per_iter (BENCH_3.json baseline)
  bench_serve        entries keyed by (streams, max_batch, threads, impl),
                     timed by ns_per_window (BENCH_5.json baseline) — the
                     graph-free plan path's serving guard
  bench_serve_scale  entries keyed by (streams, shards, max_batch, threads,
                     impl), timed by ns_per_window (BENCH_6.json baseline).
                     Additionally gates bytes_per_idle_stream at
                     --max-bytes-ratio: the per-stream memory footprint is
                     allocation arithmetic, not wall-clock, so it is stable
                     across runners and a tighter bound than time.
  bench_serve_policy entries keyed by (streams, max_batch, threads,
                     policy), timed by ns_per_window (BENCH_7.json
                     baseline) — static vs streaming-SPOT threshold
                     policies. Gates bytes_per_idle_stream too, so a
                     static-policy stream silently growing SPOT state (or
                     the SPOT slab bloating) fails the build.
  bench_serve_reload entries keyed by (streams, max_batch, threads,
                     phase), timed by ns_per_window (BENCH_8.json
                     baseline) — steady serving vs serving across
                     mid-stream artifact hot-swaps. The reload-phase rows
                     include the swap pauses in their wall time, so a
                     reload path that starts blocking scoring trips the
                     same 2x gate. max_push_ns and reload_pause_ns ride
                     along for inspection but are single-sample maxima
                     (one scheduler preemption moves them 100x), so they
                     are not gated.
  bench_serve_health entries keyed by (streams, max_batch, threads,
                     health), timed by ns_per_window (BENCH_10.json
                     baseline) — serving with model-health monitoring off
                     vs on. Gates bytes_per_idle_stream too, so the
                     health/canary slabs silently bloating (or monitoring
                     sneaking onto the allocation path) fails the build.

Fails (exit 1) if any entry present in both files got slower than
--max-ratio x the baseline time. The threshold is loose on purpose:
baselines are recorded on one machine and CI runs on another, so only real
regressions (an accidentally de-vectorised loop, a lost blocking path, a
scoring path that fell back to graph construction) should trip it, not
runner-to-runner variance.

Checksum drift is reported as a warning, not a failure: matmul/conv
checksums are exact-order IEEE sums and should match across machines, but
libm-backed ops (sigmoid, softmax, the trained ensembles bench_serve
scores) legitimately differ between glibc versions.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("bench", "bench_micro_ops"), doc["entries"]


def entry_key(bench, e):
    # .get("impl"): schema-1 bench_serve files (the historical BENCH_4.json)
    # predate the impl field; keying them as impl="" makes a schema mismatch
    # a clean "missing from current run" diff instead of a KeyError.
    if bench == "bench_serve_scale":
        return (e["streams"], e["shards"], e["max_batch"], e["threads"],
                e["impl"])
    if bench == "bench_serve_policy":
        return (e["streams"], e["max_batch"], e["threads"], e["policy"])
    if bench == "bench_serve_reload":
        return (e["streams"], e["max_batch"], e["threads"], e["phase"])
    if bench == "bench_serve_health":
        return (e["streams"], e["max_batch"], e["threads"], e["health"])
    if bench == "bench_serve":
        return (e["streams"], e["max_batch"], e["threads"], e.get("impl", ""))
    return (e["op"], e["shape"], e["threads"], e["impl"])


def metric_name(bench):
    if bench in ("bench_serve", "bench_serve_scale", "bench_serve_policy",
                 "bench_serve_reload", "bench_serve_health"):
        return "ns_per_window"
    return "ns_per_iter"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-ratio", type=float, default=2.0)
    ap.add_argument("--max-bytes-ratio", type=float, default=1.25)
    args = ap.parse_args()

    base_bench, base_entries = load(args.baseline)
    cur_bench, cur_entries = load(args.current)
    if base_bench != cur_bench:
        print(
            f"bench mismatch: baseline is {base_bench}, current is "
            f"{cur_bench}",
            file=sys.stderr,
        )
        return 1
    metric = metric_name(base_bench)
    baseline = {entry_key(base_bench, e): e for e in base_entries}
    current = {entry_key(cur_bench, e): e for e in cur_entries}

    failures = []
    warnings = []
    compared = 0
    # A baseline entry the current run no longer emits means the path the
    # gate protects is no longer measured — that is a failure, not a skip.
    for k in sorted(baseline.keys() - current.keys(), key=str):
        failures.append(f"{k}: present in baseline but missing from current run")
    for k, cur in sorted(current.items(), key=lambda kv: str(kv[0])):
        base = baseline.get(k)
        if base is None:
            warnings.append(f"new entry (no baseline): {k}")
            continue
        compared += 1
        ratio = cur[metric] / base[metric]
        marker = ""
        if ratio > args.max_ratio:
            failures.append(
                f"{k}: {base[metric]:.0f} -> {cur[metric]:.0f} "
                f"{metric} ({ratio:.2f}x)"
            )
            marker = "  <-- REGRESSION"
        print(
            f"  {str(k):<48} "
            f"{base[metric]:>12.0f} -> {cur[metric]:>12.0f} "
            f"{metric} ({ratio:5.2f}x){marker}"
        )
        b_ck, c_ck = base["checksum"], cur["checksum"]
        denom = max(abs(b_ck), abs(c_ck), 1e-30)
        if abs(b_ck - c_ck) / denom > 1e-6:
            warnings.append(f"checksum drift at {k}: {b_ck!r} -> {c_ck!r}")
        # The scale bench's memory metric: per-idle-stream bytes growing
        # past the bound means the packed session store regressed (a
        # re-introduced per-session node allocation shows up here long
        # before it shows up in wall-clock).
        if "bytes_per_idle_stream" in base and "bytes_per_idle_stream" in cur:
            b_mem, c_mem = (base["bytes_per_idle_stream"],
                            cur["bytes_per_idle_stream"])
            mem_ratio = c_mem / b_mem
            if mem_ratio > args.max_bytes_ratio:
                failures.append(
                    f"{k}: {b_mem:.0f} -> {c_mem:.0f} bytes/idle-stream "
                    f"({mem_ratio:.2f}x > {args.max_bytes_ratio}x)"
                )

    for w in warnings:
        print(f"WARNING: {w}", file=sys.stderr)
    if failures:
        print(
            f"\n{len(failures)} failure(s) (regressed more than "
            f"{args.max_ratio}x, or missing from the current run):",
            file=sys.stderr,
        )
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    if compared == 0:
        print("no entries compared — empty or disjoint bench runs",
              file=sys.stderr)
        return 1
    print(f"\nOK: {compared} entries within {args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every tracked *.md file (or an explicit file list) for inline links
and images ``[text](target)``. For relative targets it verifies the target
exists; for targets pointing at a markdown file it also verifies the
``#anchor`` (if any) matches a heading in that file, using GitHub's
heading-slug rules. External links (http/https/mailto) are ignored — CI
must not depend on the network.

Exit status: 0 when every link resolves, 1 with one line per dead link
otherwise. Run locally with:  python3 scripts/check_docs_links.py
"""

import argparse
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown_files(root):
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md"], cwd=root, check=True,
            capture_output=True, text=True)
        files = [line for line in out.stdout.splitlines() if line]
    except (subprocess.CalledProcessError, FileNotFoundError):
        files = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames
                           if d not in (".git", "build") and
                           not d.startswith("build")]
            for name in filenames:
                if name.endswith(".md"):
                    files.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return sorted(files)


def strip_code(lines):
    """Drop fenced code blocks and inline code spans (links inside code are
    examples, not navigation)."""
    kept = []
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            kept.append("")
            continue
        kept.append("" if in_fence else re.sub(r"`[^`]*`", "", line))
    return kept


def github_slug(heading):
    """GitHub's anchor slug: lowercase, spaces to dashes, drop everything
    that is not alphanumeric, dash, or underscore."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_slugs(path):
    slugs = set()
    counts = {}
    with open(path, encoding="utf-8") as f:
        for line in strip_code(f.read().splitlines()):
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(root, rel_path):
    errors = []
    abs_path = os.path.join(root, rel_path)
    with open(abs_path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    for lineno, line in enumerate(strip_code(lines), start=1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            if target.startswith("#"):
                if target[1:] not in heading_slugs(abs_path):
                    errors.append(f"{rel_path}:{lineno}: dead anchor "
                                  f"'{target}' (no such heading)")
                continue
            path_part, _, anchor = target.partition("#")
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(abs_path), path_part))
            if not os.path.exists(resolved):
                errors.append(f"{rel_path}:{lineno}: dead link '{target}' "
                              f"({os.path.relpath(resolved, root)} does not "
                              f"exist)")
                continue
            if anchor and resolved.endswith(".md"):
                if anchor not in heading_slugs(resolved):
                    errors.append(f"{rel_path}:{lineno}: dead anchor "
                                  f"'{target}' (no such heading in "
                                  f"{os.path.relpath(resolved, root)})")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="markdown files to check (default: every "
                             "tracked *.md)")
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    files = args.files or tracked_markdown_files(root)
    if not files:
        print("check_docs_links: no markdown files found", file=sys.stderr)
        return 1

    errors = []
    for rel_path in files:
        errors.extend(check_file(root, rel_path))

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"check_docs_links: {len(errors)} dead reference(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"check_docs_links: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Unit tests for check_eval_regression.py's comparison logic.

Run directly (python3 scripts/check_eval_regression_test.py) or via ctest
(registered as check_eval_regression_py). Exercises the pure compare()
function on synthetic documents — no eval_gauntlet binary needed.
"""

import copy
import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_eval_regression as cer  # noqa: E402


def doc(entries, scenarios=None, fingerprint="fp0"):
    if scenarios is None:
        names = {e["scenario"] for e in entries}
        scenarios = [{"name": n, "group": "paper"} for n in sorted(names)]
    return {
        "eval": "eval_gauntlet",
        "config_fingerprint": fingerprint,
        "scenarios": scenarios,
        "entries": entries,
    }


def entry(scenario, detector, pr_auc):
    return {"scenario": scenario, "detector": detector, "pr_auc": pr_auc}


BASE = doc([
    entry("paper/ecg", "CAE-Ensemble", 0.50),
    entry("paper/ecg", "LOF", 0.30),
    entry("paper/smd", "CAE-Ensemble", 0.40),
    entry("paper/smd", "LOF", 0.35),
])


class CompareTest(unittest.TestCase):
    def check(self, current, tolerance=0.05, drift=0.05):
        return cer.compare(BASE, current, tolerance, drift)

    def test_identical_runs_pass(self):
        failures, warnings, _ = self.check(copy.deepcopy(BASE))
        self.assertEqual(failures, [])
        self.assertEqual(warnings, [])

    def test_champion_drop_within_tolerance_passes(self):
        cur = copy.deepcopy(BASE)
        cur["entries"][0]["pr_auc"] = 0.46  # -0.04, tolerance 0.05
        failures, _, _ = self.check(cur)
        self.assertEqual(failures, [])

    def test_champion_drop_beyond_tolerance_fails(self):
        cur = copy.deepcopy(BASE)
        cur["entries"][0]["pr_auc"] = 0.40  # -0.10 on paper/ecg
        failures, _, _ = self.check(cur)
        self.assertEqual(len(failures), 1)
        self.assertIn("paper/ecg", failures[0])
        self.assertIn("CAE-Ensemble", failures[0])

    def test_champion_improvement_never_fails(self):
        cur = copy.deepcopy(BASE)
        cur["entries"][0]["pr_auc"] = 0.90
        failures, warnings, _ = self.check(cur)
        self.assertEqual(failures, [])
        self.assertEqual(warnings, [])  # champion drift is not warned

    def test_baseline_detector_drift_warns_not_fails(self):
        cur = copy.deepcopy(BASE)
        cur["entries"][1]["pr_auc"] = 0.45  # LOF +0.15: drift, not failure
        failures, warnings, _ = self.check(cur)
        self.assertEqual(failures, [])
        self.assertEqual(len(warnings), 1)
        self.assertIn("LOF", warnings[0])

    def test_missing_entry_fails(self):
        cur = copy.deepcopy(BASE)
        cur["entries"] = cur["entries"][:-1]  # drop paper/smd LOF
        failures, _, _ = self.check(cur)
        self.assertTrue(any("missing from current run" in f
                            for f in failures))

    def test_new_entry_warns(self):
        cur = copy.deepcopy(BASE)
        cur["entries"].append(entry("paper/ecg", "NEW", 0.10))
        failures, warnings, _ = self.check(cur)
        self.assertEqual(failures, [])
        self.assertTrue(any("new entry" in w for w in warnings))

    def test_fingerprint_mismatch_fails_fast(self):
        cur = copy.deepcopy(BASE)
        cur["config_fingerprint"] = "fp1"
        failures, _, lines = self.check(cur)
        self.assertEqual(len(failures), 1)
        self.assertIn("fingerprint", failures[0])
        self.assertEqual(lines, [])  # no per-entry comparison attempted

    def test_champion_property_lost_fails(self):
        # LOF overtakes CAE-Ensemble's paper-group mean by > tolerance.
        cur = copy.deepcopy(BASE)
        cur["entries"][1]["pr_auc"] = 0.62
        cur["entries"][3]["pr_auc"] = 0.62  # LOF mean 0.62 vs champ 0.45
        failures, _, _ = self.check(cur, drift=1.0)
        self.assertTrue(any("champion property lost" in f for f in failures))

    def test_champion_property_within_tolerance_passes(self):
        cur = copy.deepcopy(BASE)
        cur["entries"][1]["pr_auc"] = 0.47
        cur["entries"][3]["pr_auc"] = 0.47  # LOF mean 0.47 vs champ 0.45
        failures, _, _ = self.check(cur, drift=1.0)
        self.assertEqual(failures, [])

    def test_non_paper_scenarios_excluded_from_champion_mean(self):
        scenarios = [
            {"name": "paper/ecg", "group": "paper"},
            {"name": "injector/point", "group": "injector"},
        ]
        base = doc([
            entry("paper/ecg", "CAE-Ensemble", 0.50),
            entry("paper/ecg", "LOF", 0.30),
            entry("injector/point", "CAE-Ensemble", 0.01),
            entry("injector/point", "LOF", 0.99),
        ], scenarios=scenarios)
        cur = copy.deepcopy(base)
        failures, _, _ = cer.compare(base, cur, 0.05, 1.0)
        self.assertEqual(failures, [])  # LOF's injector win is irrelevant

    def test_disjoint_runs_fail(self):
        cur = doc([entry("paper/other", "CAE-Ensemble", 0.5)])
        failures, _, _ = self.check(cur)
        self.assertTrue(any("no entries compared" in f for f in failures))

    def test_champion_missing_from_paper_group_fails(self):
        cur = doc([
            entry("paper/ecg", "LOF", 0.30),
            entry("paper/smd", "LOF", 0.35),
        ])
        failures, _, _ = self.check(cur)
        self.assertTrue(any("no entries in" in f for f in failures))


class ChampionMeansTest(unittest.TestCase):
    def test_means_average_over_group_scenarios_only(self):
        means = cer.champion_means(BASE)
        self.assertAlmostEqual(means["CAE-Ensemble"], 0.45)
        self.assertAlmostEqual(means["LOF"], 0.325)

    def test_empty_document(self):
        self.assertEqual(cer.champion_means(doc([])), {})


if __name__ == "__main__":
    unittest.main()

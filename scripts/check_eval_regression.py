#!/usr/bin/env python3
"""Compare an eval_gauntlet run against its committed accuracy baseline.

Usage: check_eval_regression.py BASELINE.json CURRENT.json
           [--tolerance 0.05] [--drift-tolerance 0.05]

The accuracy counterpart of check_bench_regression.py, gating EVAL_9.json
(docs/evaluation.md). eval_gauntlet is bit-deterministic for a given
(matrix, suite) configuration — the config_fingerprint field hashes
everything accuracy depends on — so unlike the timing gates this one can
afford absolute tolerances on the metric values themselves.

Failure (exit 1) conditions:
  - config_fingerprint mismatch: the scenario matrix or detector sizing
    changed, so the numbers are not comparable. Regenerate the baseline
    (docs/evaluation.md "Regenerating the baseline") in the same PR.
  - a (scenario, detector) pair present in the baseline is missing from the
    current run: the coverage the gate protects silently shrank.
  - CAE-Ensemble's PR-AUC on any scenario dropped more than --tolerance
    below the baseline value: an accuracy regression in the model under
    test (the paper's subject), e.g. a scoring-path bug or a broken
    ensemble combination rule.
  - the champion property no longer holds: CAE-Ensemble's mean PR-AUC over
    the group="paper" scenarios must stay within --tolerance of the best
    detector's mean. The committed baseline has CAE-Ensemble strictly
    best; losing that by more than the tolerance means the headline claim
    of the reproduction regressed.

Warnings (stderr, exit 0) cover baseline-detector drift: any non-CAE-
Ensemble PR-AUC moving more than --drift-tolerance in either direction.
Baselines are frozen code, so drift usually means a shared dependency
(metrics, calibration, dataset generation) changed under them — worth a
look, not a build failure.

PR-AUC is the gated metric (not F1): it integrates over every threshold,
so it catches a degraded score ordering even when the single best-F1
operating point happens to survive.
"""

import argparse
import json
import sys

CHAMPION = "CAE-Ensemble"
CHAMPION_GROUP = "paper"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("eval") != "eval_gauntlet":
        raise ValueError(f"{path}: not an eval_gauntlet document")
    return doc


def entry_key(e):
    return (e["scenario"], e["detector"])


def champion_means(doc):
    """Per-detector mean PR-AUC over the champion (paper) group."""
    groups = {s["name"]: s["group"] for s in doc.get("scenarios", [])}
    sums = {}
    for e in doc["entries"]:
        if groups.get(e["scenario"]) != CHAMPION_GROUP:
            continue
        total, n = sums.get(e["detector"], (0.0, 0))
        sums[e["detector"]] = (total + e["pr_auc"], n + 1)
    return {d: total / n for d, (total, n) in sums.items() if n}


def compare(baseline, current, tolerance, drift_tolerance):
    """Pure comparison: returns (failures, warnings, report_lines)."""
    failures = []
    warnings = []
    lines = []

    b_fp = baseline.get("config_fingerprint", "")
    c_fp = current.get("config_fingerprint", "")
    if b_fp != c_fp:
        failures.append(
            f"config fingerprint mismatch: baseline {b_fp!r} vs current "
            f"{c_fp!r} — matrix or detector sizing changed; regenerate the "
            f"baseline (docs/evaluation.md)"
        )
        return failures, warnings, lines

    base = {entry_key(e): e for e in baseline["entries"]}
    cur = {entry_key(e): e for e in current["entries"]}

    for k in sorted(base.keys() - cur.keys()):
        failures.append(f"{k}: present in baseline but missing from current run")
    for k in sorted(cur.keys() - base.keys()):
        warnings.append(f"new entry (no baseline): {k}")

    for k in sorted(base.keys() & cur.keys()):
        scenario, detector = k
        b, c = base[k]["pr_auc"], cur[k]["pr_auc"]
        delta = c - b
        marker = ""
        if detector == CHAMPION:
            if delta < -tolerance:
                failures.append(
                    f"{scenario}: {CHAMPION} PR-AUC {b:.4f} -> {c:.4f} "
                    f"({delta:+.4f} < -{tolerance})"
                )
                marker = "  <-- REGRESSION"
        elif abs(delta) > drift_tolerance:
            warnings.append(
                f"baseline drift at {scenario}/{detector}: PR-AUC "
                f"{b:.4f} -> {c:.4f} ({delta:+.4f})"
            )
            marker = "  <-- drift"
        lines.append(
            f"  {scenario:<28} {detector:<14} "
            f"{b:.4f} -> {c:.4f} ({delta:+.4f}){marker}"
        )

    means = champion_means(current)
    if CHAMPION not in means:
        failures.append(
            f"{CHAMPION} has no entries in the {CHAMPION_GROUP!r} group of "
            f"the current run"
        )
    elif means:
        best_name, best = max(means.items(), key=lambda kv: (kv[1], kv[0]))
        champ = means[CHAMPION]
        lines.append(
            f"  champion check: {CHAMPION} mean PR-AUC over "
            f"{CHAMPION_GROUP!r} = {champ:.4f}, best = {best_name} "
            f"({best:.4f})"
        )
        if best - champ > tolerance:
            failures.append(
                f"champion property lost: {best_name} mean PR-AUC {best:.4f} "
                f"beats {CHAMPION} {champ:.4f} by more than {tolerance} on "
                f"the {CHAMPION_GROUP!r} group"
            )

    if not base.keys() & cur.keys():
        failures.append("no entries compared — empty or disjoint eval runs")
    return failures, warnings, lines


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="max allowed absolute CAE-Ensemble PR-AUC drop")
    ap.add_argument("--drift-tolerance", type=float, default=0.05,
                    help="absolute PR-AUC drift on other detectors that "
                         "triggers a warning")
    args = ap.parse_args()

    failures, warnings, lines = compare(
        load(args.baseline), load(args.current),
        args.tolerance, args.drift_tolerance,
    )
    for line in lines:
        print(line)
    for w in warnings:
        print(f"WARNING: {w}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(lines)} comparisons within tolerance "
          f"{args.tolerance}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Runs the kernel micro-benchmarks (emitting a machine-readable
# BENCH_3.json: op, shape, threads, impl, ns/iter, checksum), the
# multi-stream serving throughput table (BENCH_5.json: streams x max-batch
# x impl windows/sec, with graph-vs-plan rows and the B=1 tail-latency
# case), and the two timing benches at 1 and 4 engine threads with a
# before/after table for the parallel execution engine.
#
# Usage: scripts/run_benches.sh [build_dir]
#   BENCH_JSON=path  where to write the micro-op entries
#                    (default: BENCH_3.json in the repo root; compare
#                    against the committed baseline with
#                    scripts/check_bench_regression.py)
#   SERVE_JSON=path  where to write the serving-throughput entries
#                    (default: BENCH_5.json in the repo root; same
#                    regression checker, BENCH_5.json baseline)
#   SCALE_JSON=path  where to write the sharded-engine scale entries
#                    (streams x shards with bytes-per-idle-stream;
#                    default: BENCH_6.json in the repo root; same
#                    regression checker, BENCH_6.json baseline)
#   POLICY_JSON=path where to write the threshold-policy entries
#                    (static vs streaming-SPOT verdicts, ns/window and
#                    bytes/idle-stream; default: BENCH_7.json in the repo
#                    root; same regression checker, BENCH_7.json baseline)
#   RELOAD_JSON=path where to write the hot-swap reload entries (steady vs
#                    reload phases with max-push and reload-pause times;
#                    default: BENCH_8.json in the repo root; same
#                    regression checker, BENCH_8.json baseline)
#   HEALTH_JSON=path where to write the model-health entries (monitoring
#                    off vs on, ns/window and bytes/idle-stream; default:
#                    BENCH_10.json in the repo root; same regression
#                    checker, BENCH_10.json baseline)
set -euo pipefail

BUILD_DIR="${1:-build}"
SCALE="${SCALE:-0.15}"
MODELS="${MODELS:-4}"
EPOCHS="${EPOCHS:-2}"
BENCH_JSON="${BENCH_JSON:-BENCH_3.json}"
SERVE_JSON="${SERVE_JSON:-BENCH_5.json}"
SCALE_JSON="${SCALE_JSON:-BENCH_6.json}"
POLICY_JSON="${POLICY_JSON:-BENCH_7.json}"
RELOAD_JSON="${RELOAD_JSON:-BENCH_8.json}"
HEALTH_JSON="${HEALTH_JSON:-BENCH_10.json}"

if [[ ! -x "${BUILD_DIR}/bench_training_time" ]]; then
  echo "error: ${BUILD_DIR}/bench_training_time not found." >&2
  echo "Build first: cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release \\" >&2
  echo "             && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

extract_seconds() {
  # Pull the CAE-Ensemble row's first numeric column out of the Table 7
  # output.
  awk '/^\| CAE-Ensemble +\|/ { gsub(/\|/, " "); print $2; exit }'
}

if [[ -x "${BUILD_DIR}/bench_micro_ops" ]]; then
  echo "=== Kernel micro-ops (naive vs optimized; writes ${BENCH_JSON}) ==="
  "${BUILD_DIR}/bench_micro_ops" --caee_json="${BENCH_JSON}"
  echo
else
  echo "(bench_micro_ops not built — google-benchmark missing; micro-op"
  echo " JSON skipped)"
  echo
fi

if [[ -x "${BUILD_DIR}/bench_serve" ]]; then
  echo "=== Multi-stream serving (streams x max-batch x impl; writes ${SERVE_JSON};"
  echo "    scale table streams x shards with bytes/idle-stream; writes ${SCALE_JSON};"
  echo "    threshold-policy table static vs spot; writes ${POLICY_JSON};"
  echo "    hot-swap reload table steady vs reload; writes ${RELOAD_JSON};"
  echo "    model-health table off vs on; writes ${HEALTH_JSON}) ==="
  "${BUILD_DIR}/bench_serve" --models="${MODELS}" --epochs="${EPOCHS}" \
    --caee_json="${SERVE_JSON}" --caee_scale_json="${SCALE_JSON}" \
    --caee_policy_json="${POLICY_JSON}" --caee_reload_json="${RELOAD_JSON}" \
    --caee_health_json="${HEALTH_JSON}"
  echo
else
  echo "error: ${BUILD_DIR}/bench_serve not found (build first)" >&2
  exit 1
fi

echo "=== Parallel engine before/after (scale=${SCALE}, M=${MODELS}, epochs=${EPOCHS}) ==="
echo

echo "--- bench_training_time, threads=1 (sequential baseline) ---"
T1_OUT="$("${BUILD_DIR}/bench_training_time" \
  --scale="${SCALE}" --models="${MODELS}" --epochs="${EPOCHS}" --threads=1)"
echo "${T1_OUT}"
echo

echo "--- bench_training_time, threads=4 (parallel engine) ---"
T4_OUT="$("${BUILD_DIR}/bench_training_time" \
  --scale="${SCALE}" --models="${MODELS}" --epochs="${EPOCHS}" --threads=4)"
echo "${T4_OUT}"
echo

T1=$(echo "${T1_OUT}" | extract_seconds || true)
T4=$(echo "${T4_OUT}" | extract_seconds || true)

if [[ -x "${BUILD_DIR}/bench_inference_time" ]]; then
  echo "--- bench_inference_time, ensemble scoring at threads=1 vs threads=4 ---"
  "${BUILD_DIR}/bench_inference_time" \
    --benchmark_filter='ens_t[14]' --benchmark_min_time=0.2
  echo
else
  echo "(bench_inference_time not built — google-benchmark missing; skipped)"
fi

echo "=== Summary ==="
printf '%-34s %12s %12s %10s\n' "bench" "threads=1" "threads=4" "speedup"
if [[ -n "${T1}" && -n "${T4}" ]]; then
  SPEEDUP=$(awk -v a="${T1}" -v b="${T4}" 'BEGIN { if (b > 0) printf "%.2fx", a / b; else print "n/a" }')
  printf '%-34s %11ss %11ss %10s\n' \
    "bench_training_time (CAE-Ensemble)" "${T1}" "${T4}" "${SPEEDUP}"
else
  echo "bench_training_time: could not parse timings"
fi
echo "(inference per-window latencies: see the ens_t1 / ens_t4 rows above;"
echo " speedups require >1 hardware core — nproc=$(nproc) here)"

// Water-distribution intrusion detection (the paper's WADI scenario): 127
// strongly-correlated hydraulic sensors, attacks appearing as sustained
// manipulations of a few channels. Demonstrates the fully unsupervised
// hyperparameter selection (Algorithm 2) before training the final model.

#include <iostream>

#include "core/ensemble.h"
#include "core/hyperparameter.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

int main() {
  auto ds = data::MakeDataset("WADI", /*scale=*/0.25, /*seed=*/7);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  std::cout << "water network: " << ds->train.dims() << " sensors, "
            << ds->train.length() << " normal-operation observations\n\n";

  // Step 1: unsupervised hyperparameter selection on the unlabeled
  // training series (median reconstruction-error strategy, Algorithm 2).
  core::SelectorConfig sel;
  sel.base.cae.embed_dim = 12;
  sel.base.cae.num_layers = 1;
  sel.base.num_models = 2;
  sel.base.epochs_per_model = 1;
  sel.base.max_train_windows = 96;
  sel.ranges.windows = {8, 16};
  sel.ranges.betas = {0.3f, 0.5f, 0.7f};
  sel.ranges.lambdas = {0.1f, 0.3f, 0.5f};  // MSE-normalised band
  sel.random_search_trials = 4;
  sel.seed = 7;

  core::HyperparameterSelector selector(sel);
  auto choice = selector.Select(ds->train);
  if (!choice.ok()) {
    std::cerr << choice.status() << "\n";
    return 1;
  }
  std::cout << "Algorithm 2 selected (no labels used): w=" << choice->window
            << "  beta=" << choice->beta << "  lambda=" << choice->lambda
            << "\n\n";

  // Step 2: train the production model with the selected hyperparameters.
  core::EnsembleConfig config;
  config.window = choice->window;
  config.beta = choice->beta;
  config.lambda = choice->lambda;
  config.num_models = 4;
  config.epochs_per_model = 6;
  config.batch_size = 32;
  config.lr = 2e-3f;
  config.cae.embed_dim = 0;  // auto-size
  config.cae.num_layers = 2;
  config.max_train_windows = 256;
  config.seed = 7;

  core::CaeEnsemble ensemble(config);
  if (Status s = ensemble.Fit(ds->train); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto scores = ensemble.Score(ds->test);
  if (!scores.ok()) {
    std::cerr << scores.status() << "\n";
    return 1;
  }

  // Step 3: evaluate against the attack labels.
  const auto labels = eval::TestLabels(ds->test);
  const auto report = metrics::Evaluate(*scores, labels);
  std::cout << "attack-detection accuracy: F1="
            << eval::FormatDouble(report.f1)
            << " PR=" << eval::FormatDouble(report.pr_auc)
            << " ROC=" << eval::FormatDouble(report.roc_auc) << "\n";

  // Operational summary: alarm rate under a fixed alert budget of 5%.
  const double threshold = metrics::TopKThreshold(*scores, 5.0);
  int64_t alerts = 0, true_alerts = 0;
  for (size_t t = 0; t < scores->size(); ++t) {
    if ((*scores)[t] > threshold) {
      ++alerts;
      true_alerts += labels[t];
    }
  }
  std::cout << "with a 5% alert budget: " << alerts << " alerts, "
            << true_alerts << " during labelled attacks ("
            << eval::FormatDouble(
                   alerts ? 100.0 * true_alerts / alerts : 0.0, 1)
            << "% hit rate)\n";
  return 0;
}

// eval_gauntlet: the end-to-end accuracy gauntlet (docs/evaluation.md).
//
// Runs a deterministic, seeded matrix of scenarios — paper-style synthetic
// stand-ins (ECG/SMD/SMAP), per-injector isolation scenarios, univariate and
// variable-length regimes, optional CSV-loaded real datasets — scoring
// CAE-Ensemble head-to-head against every baseline detector, and writes the
// machine-readable EVAL JSON that scripts/check_eval_regression.py gates CI
// on. Same flags + same seeds => byte-identical JSON (timing fields
// excepted; pass --no-timing to drop them entirely).
//
//   eval_gauntlet --output EVAL_9.json
//   eval_gauntlet --scale 0.3 --models 3 --epochs 4 --output eval.json
//   eval_gauntlet --scenarios paper --detectors LOF,CAE-Ensemble
//   eval_gauntlet --csv ecg-real:train.csv:test.csv --output eval.json

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cli_util.h"
#include "eval/gauntlet.h"
#include "eval/table.h"

using namespace caee;

namespace {

const char kUsage[] =
    "usage: eval_gauntlet [--output EVAL.json]\n"
    "  matrix:    --scale S (default 0.3; series-length multiplier)\n"
    "             --seed N (default 7)\n"
    "             --scenarios A,B    substring filter on scenario names\n"
    "             --csv NAME:TRAIN:TEST  append a CSV-loaded scenario\n"
    "             --list             print the scenario names and exit\n"
    "  detectors: --detectors A,B (default: all 12)\n"
    "             --models M --epochs E --window W --batch B --layers L\n"
    "             --embed-dim D --max-train-windows N --lr R --lambda F\n"
    "             --beta F --threads T\n"
    "  spot:      --spot-level L (default 0.9) --spot-q Q (default 0.01)\n"
    "             --spot-peaks N (default 64)\n"
    "  output:    --output PATH      write the EVAL JSON document\n"
    "             --no-timing        omit fit/score timing fields (the\n"
    "                                remaining document is byte-stable)\n"
    "             --quiet            no per-scenario tables on stdout\n";

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = csv.find(',', begin);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

int Fail(const Status& status) {
  std::cerr << "eval_gauntlet: " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.RejectUnknown(
      {"output", "scale", "seed", "scenarios", "csv", "list", "detectors",
       "models", "epochs", "window", "batch", "layers", "embed-dim",
       "max-train-windows", "lr", "lambda", "beta", "threads", "spot-level",
       "spot-q", "spot-peaks", "no-timing", "quiet", "help"},
      kUsage);
  if (args.Has("help")) {
    std::cerr << kUsage;
    return 0;
  }

  const double scale = args.GetDouble("scale", 0.3);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  if (scale <= 0.0 || scale > 4.0) {
    std::cerr << "eval_gauntlet: --scale must be in (0, 4]\n";
    return 2;
  }

  // --- Scenario matrix -----------------------------------------------------
  std::vector<eval::ScenarioSpec> specs =
      eval::DefaultScenarioMatrix(scale, seed);
  if (args.Has("csv")) {
    // NAME:TRAIN:TEST (train unlabeled, test with a trailing label column).
    const std::string spec_str = args.Get("csv", "");
    const size_t c1 = spec_str.find(':');
    const size_t c2 = c1 == std::string::npos ? c1 : spec_str.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      std::cerr << "eval_gauntlet: --csv needs NAME:TRAIN:TEST\n";
      return 2;
    }
    eval::ScenarioSpec csv;
    csv.name = "csv/" + spec_str.substr(0, c1);
    csv.group = "csv";
    csv.train_csv = spec_str.substr(c1 + 1, c2 - c1 - 1);
    csv.test_csv = spec_str.substr(c2 + 1);
    specs.push_back(std::move(csv));
  }
  if (args.Has("scenarios")) {
    const std::vector<std::string> filters =
        SplitCsv(args.Get("scenarios", ""));
    std::vector<eval::ScenarioSpec> kept;
    for (auto& spec : specs) {
      for (const auto& f : filters) {
        if (spec.name.find(f) != std::string::npos) {
          kept.push_back(std::move(spec));
          break;
        }
      }
    }
    if (kept.empty()) {
      std::cerr << "eval_gauntlet: --scenarios matched nothing\n";
      return 2;
    }
    specs = std::move(kept);
  }
  if (args.Has("list")) {
    for (const auto& spec : specs) {
      std::cout << spec.name << " (" << spec.group << ")\n";
    }
    return 0;
  }

  // --- Detector sizing -----------------------------------------------------
  eval::GauntletConfig config;
  eval::SuiteConfig& s = config.suite;
  s.window = args.GetInt("window", 8);
  s.embed_dim = args.GetInt("embed-dim", 32);
  s.cae_layers = args.GetInt("layers", 2);
  s.num_models = args.GetInt("models", 8);
  s.epochs_per_model = args.GetInt("epochs", 6);
  s.rnn_hidden = 16;
  s.rnn_epochs = 2;
  s.ae_epochs = 8;
  s.batch_size = args.GetInt("batch", 32);
  s.max_train_windows = args.GetInt("max-train-windows", 512);
  s.lr = static_cast<float>(args.GetDouble("lr", 2e-3));
  s.lambda = static_cast<float>(args.GetDouble("lambda", 0.5));
  s.beta = static_cast<float>(args.GetDouble("beta", 0.5));
  s.num_threads = args.GetInt("threads", 0);
  s.seed = seed;
  config.detectors = SplitCsv(args.Get("detectors", ""));
  config.spot_level = args.GetDouble("spot-level", config.spot_level);
  config.spot_q = args.GetDouble("spot-q", config.spot_q);
  config.spot_peaks = args.GetInt("spot-peaks", config.spot_peaks);

  const std::string fingerprint = eval::ConfigFingerprint(specs, config);
  const bool quiet = args.Has("quiet");
  if (!quiet) {
    std::cout << "=== eval_gauntlet: " << specs.size()
              << " scenarios (scale=" << scale << ", seed=" << seed
              << ", M=" << s.num_models << ", epochs=" << s.epochs_per_model
              << ", fingerprint=" << fingerprint << ") ===\n\n";
  }

  // --- Run -----------------------------------------------------------------
  std::vector<eval::ScenarioResult> results;
  std::map<std::string, std::vector<double>> paper_pr;  // detector -> PR-AUCs
  for (const auto& spec : specs) {
    auto result = eval::RunScenario(spec, config);
    if (!result.ok()) return Fail(result.status());
    if (!quiet) {
      eval::TablePrinter table({"Detector", "P", "R", "F1", "PR-AUC",
                                "ROC-AUC", "F1@thr", "F1@spot"});
      for (const auto& cell : result->cells) {
        table.AddRow({cell.detector, eval::FormatDouble(cell.report.precision),
                      eval::FormatDouble(cell.report.recall),
                      eval::FormatDouble(cell.report.f1),
                      eval::FormatDouble(cell.report.pr_auc),
                      eval::FormatDouble(cell.report.roc_auc),
                      eval::FormatDouble(cell.at_threshold.f1),
                      cell.has_spot ? eval::FormatDouble(cell.spot.f1) : "-"});
      }
      std::cout << "--- " << result->name << " (dims=" << result->dims
                << ", train=" << result->train_length
                << ", test=" << result->test_length << ", outlier ratio="
                << eval::FormatDouble(result->outlier_ratio) << ") ---\n"
                << table.ToString() << "\n";
    }
    if (result->group == "paper") {
      for (const auto& cell : result->cells) {
        paper_pr[cell.detector].push_back(cell.report.pr_auc);
      }
    }
    results.push_back(std::move(*result));
  }

  // Paper-group champion summary: the acceptance property the committed
  // baseline must show (checked by check_eval_regression.py).
  if (!quiet && !paper_pr.empty()) {
    eval::TablePrinter table({"Detector", "mean PR-AUC (paper group)"});
    std::string best_name;
    double best = -1.0;
    for (const auto& [name, prs] : paper_pr) {
      double mean = 0.0;
      for (double v : prs) mean += v;
      mean /= static_cast<double>(prs.size());
      table.AddRow({name, eval::FormatDouble(mean)});
      if (mean > best) {
        best = mean;
        best_name = name;
      }
    }
    std::cout << "--- Paper-group summary ---\n"
              << table.ToString() << "best: " << best_name << " ("
              << eval::FormatDouble(best) << ")\n\n";
  }

  // --- Emit ----------------------------------------------------------------
  const std::string json = eval::GauntletJson(
      results, fingerprint, seed, scale, !args.Has("no-timing"));
  if (args.Has("output")) {
    std::ofstream out(args.Get("output", ""));
    if (!out) {
      return Fail(Status::IOError("cannot write " + args.Get("output", "")));
    }
    out << json;
    if (!out) return Fail(Status::IOError("write failed"));
    if (!quiet) {
      std::cout << "wrote " << args.Get("output", "") << " (" << json.size()
                << " bytes, " << results.size() << " scenarios)\n";
    }
  } else if (quiet) {
    std::cout << json;
  }
  return 0;
}

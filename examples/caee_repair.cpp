// caee_repair: the offline consumer of the drift -> repair escalation
// (docs/operations.md).
//
// When caee_serve's drift monitor reports that the live exceed rate has
// drifted away from the SPOT calibration baseline, an operator (or a
// supervisor script) runs this tool on a CSV of recently served
// observations. It scores them with the CURRENT artifact, repairs the
// flagged outliers (core/repair.h — the paper's Sec. 6 cleaning
// direction), recalibrates the static threshold and, when the artifact is
// SPOT-capable, the SPOT init params on the cleaned scores, and writes a
// NEW artifact with the same weights but fresh calibration:
//
//   caee_repair --model model.caee --input recent.csv
//               --output model_repaired.caee
//   # then, at the still-running server's stdin:
//   reload,model_repaired.caee
//
// The weights are untouched — window, input width, and SPOT peak capacity
// are exactly those of the input artifact, so the output is always
// hot-swap compatible with the engine serving it (serve/generation.h's
// validation cannot reject it). The write is crash-atomic (tmp + fsync +
// rename; docs/persistence.md): --output may even name the live artifact
// path, a reader never observes a half-written file.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cli_util.h"
#include "core/ensemble.h"
#include "core/persistence.h"
#include "core/repair.h"
#include "core/spot.h"
#include "core/threshold.h"
#include "ts/csv.h"

using namespace caee;

namespace {

const char kUsage[] =
    "usage: caee_repair --model model.caee --input recent.csv\n"
    "                   --output repaired.caee\n"
    "                   [--labels] [--strategy interpolate|previous|mean]\n"
    "                   [--topk-percent P] [--threads T]\n"
    "  Scores --input with the artifact, repairs the observations the\n"
    "  artifact's threshold flags (non-finite scores always flag),\n"
    "  recalibrates the threshold — and the SPOT init params, when the\n"
    "  artifact carries them — on the cleaned scores, and atomically\n"
    "  writes a new artifact with the SAME weights. The output is always\n"
    "  hot-swap compatible: feed `reload,<output>` to the running\n"
    "  caee_serve (docs/operations.md).\n"
    "  --strategy picks the repair rule (default interpolate);\n"
    "  --topk-percent the recalibration quantile (default 5);\n"
    "  --labels strips a trailing label column from --input.\n";

int Fail(const Status& status) {
  std::cerr << "caee_repair: " << status << "\n";
  return 1;
}

StatusOr<core::RepairStrategy> ParseStrategy(const std::string& name) {
  if (name == "interpolate") return core::RepairStrategy::kInterpolate;
  if (name == "previous") return core::RepairStrategy::kPrevious;
  if (name == "mean") return core::RepairStrategy::kMean;
  return Status::InvalidArgument(
      "unknown --strategy '" + name +
      "' (expected interpolate, previous, or mean)");
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.RejectUnknown({"model", "input", "output", "labels", "strategy",
                      "topk-percent", "threads", "help"},
                     kUsage);
  if (args.Has("help")) {
    std::cerr << kUsage;
    return 0;
  }
  if (!args.Has("model") || !args.Has("input") || !args.Has("output")) {
    std::cerr << kUsage;
    return 2;
  }

  auto strategy = ParseStrategy(args.Get("strategy", "interpolate"));
  if (!strategy.ok()) return Fail(strategy.status());
  const double topk_percent = args.GetDouble("topk-percent", 5.0);

  // --- The current artifact ------------------------------------------------
  auto loaded = core::LoadEnsemble(args.Get("model", ""));
  if (!loaded.ok()) return Fail(loaded.status());
  core::CaeEnsemble& ensemble = *loaded->ensemble;
  ensemble.set_num_threads(args.GetInt("threads", 0));
  std::cerr << "loaded ensemble: " << ensemble.num_models() << " models, "
            << "window " << ensemble.config().window << ", "
            << ensemble.input_dim() << " dims"
            << (loaded->spot ? ", spot-calibrated" : "") << "\n";

  // --- Recent observations -------------------------------------------------
  auto series_or = ts::ReadCsv(args.Get("input", ""), args.Has("labels"));
  if (!series_or.ok()) return Fail(series_or.status());
  ts::TimeSeries series = std::move(series_or).value();
  if (series.dims() != ensemble.input_dim()) {
    return Fail(Status::InvalidArgument(
        "--input has " + std::to_string(series.dims()) +
        " dims but the artifact serves " +
        std::to_string(ensemble.input_dim())));
  }
  if (series.length() < ensemble.config().window) {
    return Fail(Status::InvalidArgument(
        "--input has " + std::to_string(series.length()) +
        " observations; need at least the window (" +
        std::to_string(ensemble.config().window) + ")"));
  }

  // --- Score and flag with the CURRENT calibration -------------------------
  auto scores = ensemble.Score(series);
  if (!scores.ok()) return Fail(scores.status());
  std::optional<double> flag_threshold = loaded->threshold;
  if (!flag_threshold.has_value()) {
    // A thresholdless artifact (kStatic never flags) still drifts; flag
    // against a fresh top-k cut of THESE scores so the repair has teeth.
    auto calibrated = core::CalibrateThreshold(
        scores.value(), {core::ThresholdStrategy::kTopK, topk_percent});
    if (!calibrated.ok()) return Fail(calibrated.status());
    flag_threshold = calibrated.value();
    std::cerr << "artifact has no threshold; flagging against a fresh top-"
              << topk_percent << "% cut " << *flag_threshold << "\n";
  }
  const std::vector<int> flags =
      core::ApplyThreshold(scores.value(), *flag_threshold);

  // --- Repair --------------------------------------------------------------
  auto repaired = core::RepairOutliers(series, flags, strategy.value());
  if (!repaired.ok()) return Fail(repaired.status());
  std::cerr << "repaired " << repaired->repaired_count << " of "
            << series.length() << " observations ("
            << args.Get("strategy", "interpolate") << ")\n";

  // --- Recalibrate on the cleaned scores -----------------------------------
  auto clean_scores = ensemble.Score(repaired->series);
  if (!clean_scores.ok()) return Fail(clean_scores.status());
  auto threshold = core::CalibrateThreshold(
      clean_scores.value(), {core::ThresholdStrategy::kTopK, topk_percent});
  if (!threshold.ok()) return Fail(threshold.status());
  std::cerr << "recalibrated threshold (top " << topk_percent << "%): "
            << threshold.value()
            << (loaded->threshold
                    ? " (was " + std::to_string(*loaded->threshold) + ")"
                    : "")
            << "\n";

  // SPOT recalibration reuses the artifact's own knobs — in particular the
  // peak capacity, which sizes the engine's per-stream slabs and is
  // validated as invariant across hot-swaps.
  std::optional<core::SpotInit> spot;
  if (loaded->spot.has_value()) {
    auto init =
        core::CalibrateSpot(clean_scores.value(), loaded->spot->config);
    if (!init.ok()) return Fail(init.status());
    spot = std::move(init).value();
    std::cerr << "recalibrated SPOT: t " << spot->t << " (was "
              << loaded->spot->t << "), z " << spot->z << " (was "
              << loaded->spot->z << "), " << spot->peaks.size()
              << " seed peaks\n";
  }

  // --- Persist (crash-atomic; docs/persistence.md) -------------------------
  const std::string output = args.Get("output", "");
  if (Status s = core::SaveEnsemble(ensemble, output, threshold.value(),
                                    spot ? &*spot : nullptr);
      !s.ok()) {
    return Fail(s);
  }
  std::ifstream artifact(output, std::ios::binary | std::ios::ate);
  std::cerr << "wrote repaired artifact " << output << " ("
            << artifact.tellg() << " bytes); hot-swap it with "
            << "`reload," << output << "`\n";
  return 0;
}

// caee_train: the OFFLINE half of the train/serve split (paper Sec. 4.2.7).
//
// Fits a CAE-Ensemble on a training series (a CSV file or a built-in
// synthetic dataset), calibrates an alert threshold on the training scores,
// and writes everything a serving process needs — config, scaler statistics,
// embedding and member weights, threshold — to a single versioned artifact
// that caee_serve consumes. See README "Offline training, online serving".
//
//   caee_train --input train.csv --output model.caee
//   caee_train --synthetic SMD --scale 0.2 --output model.caee
//       --dump-input train.csv --scores scores.txt

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cli_util.h"
#include "core/ensemble.h"
#include "core/health.h"
#include "core/persistence.h"
#include "core/spot.h"
#include "core/threshold.h"
#include "data/registry.h"
#include "ts/csv.h"

using namespace caee;

namespace {

const char kUsage[] =
    "usage: caee_train --output model.caee\n"
    "                  (--input train.csv [--labels] | --synthetic NAME\n"
    "                   [--scale S])\n"
    "  data:      --input CSV (one observation per line; --labels strips a\n"
    "             trailing label column), or --synthetic ECG|SMD|MSL|SMAP|WADI\n"
    "  model:     --window W --models M --epochs E --batch B --embed-dim D'\n"
    "             --layers L --max-train-windows N --lr R --seed S --threads T\n"
    "  threshold: --topk-percent P (default 5; top P%% of training scores)\n"
    "             --spot also calibrates streaming SPOT threshold params\n"
    "             (docs/thresholds.md) tuned by --spot-q Q (default 1e-3),\n"
    "             --spot-level L (default 0.98), --spot-peaks N (default 64)\n"
    "  health:    --health also calibrates the model-health reference\n"
    "             (training-score histogram + member-dispersion baseline)\n"
    "             that caee_serve --health validates live traffic against\n"
    "             (docs/operations.md)\n"
    "  outputs:   --output artifact path (required)\n"
    "             --dump-input CSV copy of the training series (for replay)\n"
    "             --scores training-set scores, one per line (full precision)\n";

int Fail(const Status& status) {
  std::cerr << "caee_train: " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.RejectUnknown(
      {"input", "labels", "synthetic", "scale", "output", "dump-input",
       "scores", "window", "models", "epochs", "batch", "embed-dim", "layers",
       "max-train-windows", "lr", "seed", "threads", "topk-percent", "spot",
       "spot-q", "spot-level", "spot-peaks", "health", "help"},
      kUsage);
  if (args.Has("help") || !args.Has("output") ||
      (args.Has("input") == args.Has("synthetic"))) {
    std::cerr << kUsage;
    return args.Has("help") ? 0 : 2;
  }

  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 7));

  // --- Training data -------------------------------------------------------
  ts::TimeSeries train;
  if (args.Has("input")) {
    auto series = ts::ReadCsv(args.Get("input", ""), args.Has("labels"));
    if (!series.ok()) return Fail(series.status());
    train = std::move(series).value();
  } else {
    auto dataset =
        data::MakeDataset(args.Get("synthetic", ""),
                          args.GetDouble("scale", 0.2), seed);
    if (!dataset.ok()) return Fail(dataset.status());
    train = std::move(dataset->train);
  }
  std::cout << "training series: " << train.length() << " observations x "
            << train.dims() << " dims\n";

  if (args.Has("dump-input")) {
    // Full-precision CSV: caee_serve re-reads exactly the floats trained on,
    // so its streaming scores reproduce the batch scores bit-for-bit. Labels
    // are dropped — a plain-numeric re-read must see only the values.
    ts::TimeSeries unlabeled(train.length(), train.dims());
    unlabeled.values() = train.values();
    if (Status s = ts::WriteCsv(unlabeled, args.Get("dump-input", ""));
        !s.ok()) {
      return Fail(s);
    }
  }

  // --- Fit -----------------------------------------------------------------
  core::EnsembleConfig config;
  config.window = args.GetInt("window", 16);
  config.num_models = args.GetInt("models", 4);
  config.epochs_per_model = args.GetInt("epochs", 3);
  config.batch_size = args.GetInt("batch", 64);
  config.cae.embed_dim = args.GetInt("embed-dim", 0);  // 0 = auto-size
  config.cae.num_layers = args.GetInt("layers", 2);
  config.max_train_windows = args.GetInt("max-train-windows", 0);
  config.lr = static_cast<float>(args.GetDouble("lr", 1e-3));
  config.num_threads = args.GetInt("threads", 0);
  config.seed = seed;
  // Validate before the CHECK-aborting constructor sees the config: flag
  // mistakes should read as usage errors, not crash dumps.
  if (config.window < 2 || config.num_models < 1 ||
      config.epochs_per_model < 1 || config.batch_size < 1 ||
      config.cae.embed_dim < 0 || config.cae.num_layers < 1) {
    std::cerr << "caee_train: need --window >= 2, --models/--epochs/--batch/"
                 "--layers >= 1, --embed-dim >= 0\n";
    return 2;
  }
  if (train.length() < config.window) {
    return Fail(Status::InvalidArgument(
        "training series shorter than the window"));
  }
  core::CaeEnsemble ensemble(config);
  if (Status s = ensemble.Fit(train); !s.ok()) return Fail(s);
  std::cout << "trained " << ensemble.num_models() << " models ("
            << ensemble.train_stats().parameters_per_model
            << " params each) in " << ensemble.train_stats().train_seconds
            << "s\n";

  // --- Threshold calibration on the (unlabeled) training scores ------------
  auto train_scores = ensemble.Score(train);
  if (!train_scores.ok()) return Fail(train_scores.status());
  core::ThresholdConfig threshold_config;
  threshold_config.strategy = core::ThresholdStrategy::kTopK;
  threshold_config.top_k_percent = args.GetDouble("topk-percent", 5.0);
  auto threshold =
      core::CalibrateThreshold(train_scores.value(), threshold_config);
  if (!threshold.ok()) return Fail(threshold.status());
  std::cout << "calibrated threshold (top " << threshold_config.top_k_percent
            << "%): " << threshold.value() << "\n";

  // --- Optional SPOT calibration (docs/thresholds.md) ----------------------
  std::optional<core::SpotInit> spot;
  if (args.Has("spot")) {
    core::SpotConfig spot_config;
    spot_config.q = args.GetDouble("spot-q", spot_config.q);
    spot_config.level = args.GetDouble("spot-level", spot_config.level);
    spot_config.peak_capacity =
        args.GetInt("spot-peaks", spot_config.peak_capacity);
    auto init = core::CalibrateSpot(train_scores.value(), spot_config);
    if (!init.ok()) return Fail(init.status());
    spot = std::move(init).value();
    std::cout << "calibrated SPOT (level " << spot_config.level << ", q "
              << spot_config.q << "): t " << spot->t << ", z " << spot->z
              << ", " << spot->peaks.size() << " seed peaks\n";
  }

  // --- Optional model-health calibration (docs/operations.md) --------------
  std::optional<core::HealthRef> health;
  if (args.Has("health")) {
    // The reference must describe exactly what SERVING will measure, so the
    // scores and member dispersions come through the same entry point the
    // serving shards use — ScoreWindowsLastInto over raw windows — not the
    // batch Score() path. One full-window score per position, chunked so
    // memory stays bounded on long series.
    const int64_t w = config.window;
    const int64_t dims = train.dims();
    const int64_t num_windows = train.length() - w + 1;
    const int64_t chunk = 256;
    std::vector<float> buffer(
        static_cast<size_t>(std::min(chunk, num_windows) * w * dims));
    std::vector<double> window_scores, dispersions;
    std::vector<double> chunk_scores, chunk_dispersions;
    window_scores.reserve(static_cast<size_t>(num_windows));
    dispersions.reserve(static_cast<size_t>(num_windows));
    for (int64_t start = 0; start < num_windows; start += chunk) {
      const int64_t n = std::min(chunk, num_windows - start);
      for (int64_t b = 0; b < n; ++b) {
        for (int64_t r = 0; r < w; ++r) {
          std::memcpy(buffer.data() + static_cast<size_t>((b * w + r) * dims),
                      train.row(start + b + r),
                      static_cast<size_t>(dims) * sizeof(float));
        }
      }
      if (Status s = ensemble.ScoreWindowsLastInto(
              buffer.data(), n, &chunk_scores, &chunk_dispersions);
          !s.ok()) {
        return Fail(s);
      }
      window_scores.insert(window_scores.end(), chunk_scores.begin(),
                           chunk_scores.end());
      dispersions.insert(dispersions.end(), chunk_dispersions.begin(),
                         chunk_dispersions.end());
    }
    auto ref = core::CalibrateHealthRef(window_scores, dispersions);
    if (!ref.ok()) return Fail(ref.status());
    health = std::move(ref).value();
    std::cout << "calibrated health reference (" << health->count
              << " windows, " << core::kHealthBins
              << " histogram bins, mean dispersion "
              << health->mean_dispersion << ")\n";
  }

  if (args.Has("scores")) {
    std::ofstream out(args.Get("scores", ""));
    if (!out) return Fail(Status::IOError("cannot write scores file"));
    out.precision(std::numeric_limits<double>::max_digits10);
    for (const double s : train_scores.value()) out << s << "\n";
  }

  // --- Persist -------------------------------------------------------------
  const std::string output = args.Get("output", "");
  if (Status s = core::SaveEnsemble(ensemble, output, threshold.value(),
                                    spot ? &*spot : nullptr,
                                    health ? &*health : nullptr);
      !s.ok()) {
    return Fail(s);
  }
  std::ifstream artifact(output, std::ios::binary | std::ios::ate);
  std::cout << "wrote artifact " << output << " (" << artifact.tellg()
            << " bytes, format v" << core::kArtifactVersion << ")\n";
  return 0;
}

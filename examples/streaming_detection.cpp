// Online detection (the paper's Sec. 4.2.7 streaming setting): train
// offline, then score each observation the moment it arrives using
// StreamingScorer, and measure the per-window latency (Table 8's quantity).

#include <iostream>

#include "common/stopwatch.h"
#include "core/ensemble.h"
#include "core/streaming.h"
#include "data/registry.h"
#include "eval/table.h"
#include "metrics/metrics.h"

using namespace caee;

int main() {
  auto ds = data::MakeDataset("SMAP", /*scale=*/0.2, /*seed=*/17);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }

  // Offline phase: train once.
  core::EnsembleConfig config;
  config.window = 16;
  config.num_models = 3;
  config.epochs_per_model = 4;
  config.batch_size = 32;
  config.lr = 2e-3f;
  config.cae.embed_dim = 0;  // auto-size
  config.cae.num_layers = 2;
  config.max_train_windows = 192;
  core::CaeEnsemble ensemble(config);
  if (Status s = ensemble.Fit(ds->train); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "offline training done in "
            << eval::FormatDouble(ensemble.train_stats().train_seconds, 1)
            << "s; entering streaming mode\n";

  // Online phase: feed the test series one observation at a time.
  core::StreamingScorer scorer(&ensemble);
  const auto threshold_estimate = [&] {
    // Calibrate an alert threshold on the training series (no labels).
    auto train_scores = ensemble.Score(ds->train);
    CAEE_CHECK(train_scores.ok());
    return metrics::TopKThreshold(*train_scores, 1.0);  // 1% alert budget
  }();

  int64_t alerts = 0, scored = 0;
  double total_micros = 0.0;
  double max_micros = 0.0;
  for (int64_t t = 0; t < ds->test.length(); ++t) {
    std::vector<float> obs(ds->test.row(t),
                           ds->test.row(t) + ds->test.dims());
    Stopwatch sw;
    auto result = scorer.Push(obs);
    const double us = sw.ElapsedMicros();
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    if (!result->has_value()) continue;  // warming up
    ++scored;
    total_micros += us;
    max_micros = std::max(max_micros, us);
    if (result->value() > threshold_estimate) {
      ++alerts;
      if (alerts <= 5) {
        std::cout << "  ALERT at t=" << t << " score="
                  << eval::FormatDouble(result->value(), 2)
                  << (ds->test.label(t) ? "  [labelled anomaly]"
                                        : "  [unlabelled]")
                  << "\n";
      }
    }
  }
  std::cout << "scored " << scored << " observations online; " << alerts
            << " alerts\n";
  std::cout << "latency per window: mean="
            << eval::FormatDouble(total_micros / std::max<int64_t>(1, scored),
                                  1)
            << "us max=" << eval::FormatDouble(max_micros, 1)
            << "us (Table 8's quantity; paper reports ~50us/window on GPU "
               "at D'=256)\n";
  return 0;
}

// ECG monitoring (the paper's Figs. 11-12 narrative): ground-truth labels
// mark whole arrhythmia *intervals*, but only a few observations inside each
// interval deviate strongly. A point-wise detector therefore scores high
// precision and low recall — this example makes that visible by printing
// the score/label alignment around each labelled interval.

#include <algorithm>
#include <iostream>

#include "core/ensemble.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "metrics/metrics.h"

using namespace caee;

int main() {
  auto ds = data::MakeDataset("ECG", /*scale=*/0.35, /*seed=*/21);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }

  core::EnsembleConfig config;
  config.window = 16;
  config.num_models = 4;
  config.epochs_per_model = 4;
  config.batch_size = 32;
  config.lr = 2e-3f;
  config.cae.embed_dim = 0;  // auto-size
  config.cae.num_layers = 2;
  config.lambda = 0.5f;  // MSE-normalised equivalent of Table 2's λ
  config.beta = eval::Table2Hyperparameters("ECG").beta;
  config.max_train_windows = 256;

  core::CaeEnsemble ensemble(config);
  if (Status s = ensemble.Fit(ds->train); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto scores = ensemble.Score(ds->test);
  if (!scores.ok()) {
    std::cerr << scores.status() << "\n";
    return 1;
  }
  const auto labels = eval::TestLabels(ds->test);

  // Find the labelled intervals.
  struct Interval {
    int64_t begin, end;
  };
  std::vector<Interval> intervals;
  for (int64_t t = 0; t < ds->test.length(); ++t) {
    if (labels[t] && (t == 0 || !labels[t - 1])) {
      intervals.push_back({t, t});
    }
    if (labels[t]) intervals.back().end = t;
  }
  std::cout << "found " << intervals.size()
            << " labelled anomaly intervals in the test series\n\n";

  // Threshold at the top outlier-ratio percent.
  const double threshold =
      metrics::TopKThreshold(*scores, ds->test.OutlierRatio() * 100.0);

  // Fig. 12 view: within each interval, how many observations actually
  // exceed the threshold?
  eval::TablePrinter table({"Interval", "Length", "Points above threshold",
                            "Peak score / threshold"});
  int64_t shown = 0;
  for (const auto& iv : intervals) {
    if (iv.end - iv.begin < 5) continue;  // show the interval-style ones
    if (++shown > 8) break;
    int64_t above = 0;
    double peak = 0.0;
    for (int64_t t = iv.begin; t <= iv.end; ++t) {
      above += ((*scores)[t] > threshold);
      peak = std::max(peak, (*scores)[t]);
    }
    table.AddRow({"[" + std::to_string(iv.begin) + ", " +
                      std::to_string(iv.end) + "]",
                  std::to_string(iv.end - iv.begin + 1),
                  std::to_string(above),
                  eval::FormatDouble(peak / std::max(1e-12, threshold), 1)});
  }
  std::cout << table.ToString() << "\n";

  // Flag only a third of the labelled mass: with interval labels but point
  // scores, flagged points still land inside labelled intervals, so
  // precision stays high while recall is capped — the paper's Fig. 11-12
  // observation. (At a budget equal to the label mass, precision == recall
  // by definition.)
  const auto at_k =
      metrics::AtTopK(*scores, labels, ds->test.OutlierRatio() * 100.0 / 3.0);
  const auto best = metrics::BestF1(*scores, labels);
  std::cout << "at a third of the outlier-ratio budget: precision="
            << eval::FormatDouble(at_k.precision)
            << " recall=" << eval::FormatDouble(at_k.recall)
            << "  (interval labels + point scores => precision > recall)\n";
  std::cout << "best-F1 over all thresholds: "
            << eval::FormatDouble(best.f1) << "\n";
  return 0;
}

#include <algorithm>
// Server-fleet monitoring (the paper's SMD scenario): 38 correlated metrics
// per machine, daily load cycles, legitimate deployments (level regime
// changes), and anomalies that are spikes or sustained resource shifts.
// Demonstrates: detector comparison on one dataset + per-anomaly inspection.

#include <iostream>

#include "data/registry.h"
#include "eval/detector.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

int main() {
  auto ds = data::MakeDataset("SMD", /*scale=*/0.3, /*seed=*/11);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  std::cout << "server metrics: " << ds->train.dims() << " metrics, "
            << ds->train.length() << " training observations\n\n";

  eval::SuiteConfig suite;
  suite.window = 16;
  suite.embed_dim = 0;  // auto-size from the 38 metrics
  suite.cae_layers = 2;
  suite.num_models = 4;
  suite.epochs_per_model = 4;
  suite.rnn_hidden = 16;
  suite.rnn_epochs = 2;
  suite.batch_size = 32;
  suite.lr = 2e-3f;
  suite.max_train_windows = 256;
  suite.lambda = 0.5f;  // MSE-normalised equivalent of Table 2's λ
  suite.beta = eval::Table2Hyperparameters("SMD").beta;

  // Compare a classic detector, a recurrent one, and the CAE-Ensemble.
  eval::TablePrinter table({"Detector", "F1", "PR", "ROC", "fit s"});
  std::vector<double> cae_scores;
  for (const std::string name : {"ISF", "MAS", "RAE", "CAE-Ensemble"}) {
    auto detector = eval::MakeDetector(name, suite);
    if (!detector.ok()) {
      std::cerr << detector.status() << "\n";
      return 1;
    }
    auto result = eval::RunDetector(detector->get(), *ds);
    if (!result.ok()) {
      std::cerr << name << ": " << result.status() << "\n";
      return 1;
    }
    table.AddRow({name, eval::FormatDouble(result->report.f1),
                  eval::FormatDouble(result->report.pr_auc),
                  eval::FormatDouble(result->report.roc_auc),
                  eval::FormatDouble(result->fit_seconds, 1)});
    if (name == "CAE-Ensemble") cae_scores = result->scores;
  }
  std::cout << table.ToString() << "\n";

  // Operator view: list the top-scoring alerts with their ground truth.
  const auto labels = eval::TestLabels(ds->test);
  std::vector<size_t> order(cae_scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&cae_scores](size_t a, size_t b) {
    return cae_scores[a] > cae_scores[b];
  });
  std::cout << "top 10 CAE-Ensemble alerts:\n";
  for (size_t rank = 0; rank < 10 && rank < order.size(); ++rank) {
    const size_t t = order[rank];
    std::cout << "  t=" << t << "  score=" << eval::FormatDouble(
                     cae_scores[t], 2)
              << "  ground truth: "
              << (labels[t] ? "ANOMALY" : "normal") << "\n";
  }
  return 0;
}

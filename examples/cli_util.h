// Minimal --flag=value / --flag value parser shared by the caee_train and
// caee_serve command-line tools. Header-only; examples are built as single
// translation units.

#ifndef CAEE_EXAMPLES_CLI_UTIL_H_
#define CAEE_EXAMPLES_CLI_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace caee {
namespace cli {

class Args {
 public:
  /// \brief Parse `--name value` and `--name=value` pairs; `--name` alone is
  /// a boolean flag. Exits with an error on anything not starting with `--`.
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        std::exit(2);
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      std::string key, value;
      if (eq != std::string::npos) {
        key = arg.substr(0, eq);
        value = arg.substr(eq + 1);
      } else {
        key = arg;
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          value = argv[++i];
        }  // else: boolean flag, empty value
      }
      values_[key] = value;
      order_.push_back(key);
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      size_t consumed = 0;
      const int64_t value = std::stoll(it->second, &consumed);
      if (consumed == it->second.size()) return value;
    } catch (...) {
    }
    std::cerr << "--" << name << " needs an integer, got '" << it->second
              << "'\n";
    std::exit(2);
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      size_t consumed = 0;
      const double value = std::stod(it->second, &consumed);
      if (consumed == it->second.size()) return value;
    } catch (...) {
    }
    std::cerr << "--" << name << " needs a number, got '" << it->second
              << "'\n";
    std::exit(2);
  }

  /// \brief Abort with a usage message if an unknown flag was passed.
  void RejectUnknown(const std::vector<std::string>& known,
                     const std::string& usage) const {
    for (const auto& name : order_) {
      bool ok = false;
      for (const auto& k : known) {
        if (name == k) { ok = true; break; }
      }
      if (!ok) {
        std::cerr << "unknown flag --" << name << "\n" << usage;
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace cli
}  // namespace caee

#endif  // CAEE_EXAMPLES_CLI_UTIL_H_

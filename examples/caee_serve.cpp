// caee_serve: the ONLINE half of the train/serve split (paper Sec. 4.2.7).
//
// Loads an artifact written by caee_train in a fresh process — no access to
// the training data or code path — and serves it in one of two modes
// (docs/serving.md has the full story):
//
// SINGLE-STREAM (default): each CSV line is one observation, each warm
// observation gets a score and a threshold verdict on stdout.
//
//   caee_train --synthetic SMD --output model.caee --dump-input train.csv
//   caee_serve --model model.caee --input train.csv
//   tail -f live.csv | caee_serve --model model.caee
//
// With --expect-scores FILE (the batch scores caee_train dumped), the tool
// verifies that the streaming path reproduces the offline scores for every
// post-warm-up observation and exits non-zero on any mismatch — the
// round-trip check CI runs.
//
// MULTI-STREAM (--streams): one process serves N independent series against
// the same loaded ensemble, sharded across --shards independent engine
// shards (stream id -> shard by hash; see docs/serving.md), scoring ready
// windows from different streams in one batched forward pass per shard
// (serve::ServingEngine). Text input lines:
//
//   open,<id>            open a session for stream <id>
//   <id>,v1,v2,...       one observation for stream <id>
//   close,<id>           close the session (its shard's pending windows
//                        are flushed)
//
// Output lines are `stream,index,score,flag`. --max-batch bounds each
// shard's micro-batch; --flush-ms bounds how long a ready window may wait
// when input trickles (a background timer flushes expired batches, so a
// stalled stdin cannot hold scores hostage). Scores are bitwise identical
// to serving each stream in its own single-stream process, at ANY shard
// count.
//
// BINARY PROTOCOL (--streams --binary): same session semantics over the
// length-prefixed CRC-checked framing of docs/protocol.md — requests in on
// stdin, response frames (score/ok/error/backpressure) out on stdout.
// --max-pending arms per-shard admission control: a push to a full shard
// is answered with a backpressure frame and consumes nothing. The
// --encode-frames / --decode-frames translator modes (no --model needed)
// convert the text protocol to request frames and response frames back to
// text — `caee_serve --encode-frames | caee_serve --streams --binary |
// caee_serve --decode-frames` is byte-identical to the text pipeline, the
// equivalence CI smoke-checks.
//
// OPERATIONS (docs/operations.md): in multi-stream modes a
// `reload,<path>` line (or a reload frame in binary mode) hot-swaps the
// serving artifact with zero downtime — open sessions keep scoring, a
// rejected candidate leaves the old generation serving. --drift-threshold
// arms the drift -> repair escalation: when the SPOT exceed-rate drifts
// past it, an advisory naming caee_repair lands on stderr. --health arms
// unsupervised model-health validation against the artifact's calibration
// reference: reload candidates are canary-judged on retained live windows
// before any shard switches, and a model-degradation verdict during the
// post-swap probation rolls back to the last-known-good generation
// automatically. SIGTERM/SIGINT stop intake, drain every shard, and exit
// 0 — scores already owed are delivered, not dropped.

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.h"
#include "core/persistence.h"
#include "core/streaming.h"
#include "serve/framing.h"
#include "serve/serving_engine.h"

using namespace caee;

namespace {

const char kUsage[] =
    "usage: caee_serve --model model.caee [--input obs.csv] [--threads T]\n"
    "                  [--threshold-policy static|spot]\n"
    "                  [--expect-scores scores.txt [--tolerance X]]\n"
    "                  [--streams [--max-batch N] [--flush-ms MS]\n"
    "                   [--shards S] [--max-pending N] [--binary]\n"
    "                   [--drift-threshold X [--drift-clear Y]]\n"
    "                   [--health [--health-shift X] [--health-dispersion X]\n"
    "                    [--health-nonfinite X] [--health-alert X]\n"
    "                    [--probation N]]]\n"
    "       caee_serve --encode-frames | --decode-frames   (no --model)\n"
    "  Default mode reads comma-separated observations from --input\n"
    "  (default: stdin) and prints `index,score,flag` per scored\n"
    "  observation (flag=1 above the calibrated threshold; a non-finite\n"
    "  score always flags).\n"
    "  --threshold-policy picks how verdicts are made (default static):\n"
    "  `spot` adapts the threshold online per stream via streaming\n"
    "  Peaks-Over-Threshold and needs an artifact trained with --spot\n"
    "  (docs/thresholds.md).\n"
    "  --expect-scores cross-checks the streaming scores against offline\n"
    "  batch scores and fails on mismatch.\n"
    "  --streams serves many sessions at once: lines are\n"
    "  `open,<id>[,static|spot]`, `close,<id>`, `<id>,v1,v2,...`, or the\n"
    "  admin line `reload,<path>` (hot-swap the serving artifact with zero\n"
    "  downtime; a rejected candidate keeps the old one serving —\n"
    "  docs/operations.md); output is `stream,index,score,flag`. Sessions\n"
    "  are sharded across\n"
    "  --shards\n"
    "  (default 1) independent engine shards; ready windows from different\n"
    "  streams of a shard are scored in one batched forward pass\n"
    "  (<= --max-batch windows, default 8); --flush-ms (default 50,\n"
    "  0 = off) bounds the wait of a partially filled batch.\n"
    "  --binary swaps the text protocol for the length-prefixed binary\n"
    "  framing of docs/protocol.md (request frames in, response frames\n"
    "  out); --max-pending N (default 0 = unbounded) arms per-shard\n"
    "  admission control, answered with backpressure frames.\n"
    "  --drift-threshold X arms the drift -> repair escalation: once the\n"
    "  |exceed-rate shift| drift statistic exceeds X an advisory naming\n"
    "  caee_repair is printed to stderr, once per excursion\n"
    "  (re-arming below --drift-clear Y, default X/2). Needs a\n"
    "  SPOT-calibrated artifact (docs/operations.md).\n"
    "  --health arms unsupervised model-health monitoring against the\n"
    "  artifact's calibration reference (needs caee_train --health):\n"
    "  reload candidates are canary-judged on retained live windows before\n"
    "  any shard switches, every successful swap starts a probation of\n"
    "  --probation N scored windows (default 512) during which a\n"
    "  model-degradation verdict rolls back to the last-known-good\n"
    "  generation automatically, and health excursions land on stderr.\n"
    "  --health-shift/--health-dispersion/--health-nonfinite/\n"
    "  --health-alert override the per-signal thresholds\n"
    "  (docs/operations.md). The admin line `health` (or a health frame in\n"
    "  binary mode) reports the live gauges.\n"
    "  SIGTERM/SIGINT shut down gracefully: intake stops, every shard is\n"
    "  drained, and the process exits 0.\n"
    "  --encode-frames converts text-protocol lines on stdin to request\n"
    "  frames on stdout; --decode-frames converts response frames on\n"
    "  stdin back to text lines. Neither needs a model.\n";

int Fail(const Status& status) {
  std::cerr << "caee_serve: " << status << "\n";
  return 1;
}

// ---------------------------------------------------------------------------
// Graceful shutdown (docs/operations.md).
//
// SIGTERM/SIGINT set a flag; every read loop checks it and treats it as
// end-of-input, which funnels into the normal drain path: every shard's
// pending windows are scored and delivered, the deadline flusher is
// joined, the summary prints, and the process exits 0. The handler is
// installed WITHOUT SA_RESTART on purpose — a getline/ReadFrame blocked
// on a quiet stdin must come back with EINTR (reads as EOF) instead of
// being transparently restarted, or intake would never stop.
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_shutdown = 0;

void HandleShutdownSignal(int) { g_shutdown = 1; }

void InstallShutdownHandler() {
#ifndef _WIN32
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
#endif
}

bool ParseObservation(const std::string& line, std::vector<float>* out) {
  out->clear();
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    try {
      size_t consumed = 0;
      const float value = std::stof(cell, &consumed);
      if (consumed != cell.size()) return false;  // "1.2.3" etc.
      out->push_back(value);
    } catch (...) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Single-stream mode (the PR-2 behavior, unchanged).
// ---------------------------------------------------------------------------

int RunSingleStream(const cli::Args& args, core::CaeEnsemble& ensemble,
                    double threshold, core::ThresholdPolicy policy,
                    const std::optional<core::SpotInit>& spot,
                    std::istream& in) {
  std::vector<double> expected;
  if (args.Has("expect-scores")) {
    std::ifstream scores_in(args.Get("expect-scores", ""));
    if (!scores_in) {
      return Fail(Status::IOError("cannot open expected-scores file"));
    }
    double value = 0.0;
    while (scores_in >> value) expected.push_back(value);
    if (expected.empty()) {
      return Fail(Status::InvalidArgument(
          "expected-scores file has no scores — nothing would be verified"));
    }
  }
  const double tolerance = args.GetDouble("tolerance", 0.0);

  core::StreamingScorer scorer(&ensemble);
  // The single-stream SPOT path is the same owning state the serve tests
  // use as the sequential reference for the sharded engine.
  std::optional<core::SpotState> spot_state;
  if (policy == core::ThresholdPolicy::kSpot) spot_state.emplace(*spot);
  std::string line;
  std::vector<float> observation;
  int64_t index = -1, scored = 0, alerts = 0, mismatches = 0;
  int64_t non_finite = 0;
  double worst_diff = 0.0;
  while (!g_shutdown && std::getline(in, line)) {
    if (line.empty()) continue;
    ++index;
    if (!ParseObservation(line, &observation)) {
      return Fail(Status::InvalidArgument("non-numeric observation at line " +
                                          std::to_string(index + 1)));
    }
    auto result = scorer.Push(observation);
    if (!result.ok()) return Fail(result.status());
    if (!result->has_value()) continue;  // warming up
    const double score = result->value();
    // ThresholdExceeded, not `score > threshold`: a NaN score must flag
    // (with no calibrated threshold the static policy otherwise never
    // flags — threshold is +inf — but a non-finite score still must).
    const bool flag = spot_state.has_value()
                          ? spot_state->Observe(score)
                          : core::ThresholdExceeded(score, threshold);
    non_finite += !std::isfinite(score);
    ++scored;
    alerts += flag;
    std::cout << index << "," << score << "," << (flag ? 1 : 0) << "\n";
    if (!expected.empty()) {
      // Batch scores cover every observation, but the first w-1 are scored
      // from the first window only in the batch policy (Fig. 10) and are
      // unavailable while streaming warms up — so compare from w-1 onward.
      if (index >= static_cast<int64_t>(expected.size())) {
        return Fail(Status::InvalidArgument(
            "more observations than expected scores"));
      }
      const double diff =
          std::fabs(score - expected[static_cast<size_t>(index)]);
      if (!(diff <= tolerance)) {
        ++mismatches;
        worst_diff = std::max(worst_diff, diff);
        if (mismatches <= 5) {
          std::cerr << "MISMATCH at " << index << ": streaming " << score
                    << " vs batch " << expected[static_cast<size_t>(index)]
                    << "\n";
        }
      }
    }
  }

  if (g_shutdown) {
    std::cerr << "caee_serve: caught shutdown signal, stopping intake\n";
  }
  std::cerr << "scored " << scored << " observations, " << alerts
            << " flagged, " << non_finite << " non-finite scores ("
            << core::ThresholdPolicyName(policy) << " policy)\n";
  if (!expected.empty()) {
    if (mismatches > 0) {
      std::cerr << mismatches << " streaming/batch mismatches (worst |diff| "
                << worst_diff << ")\n";
      return 1;
    }
    // Guard against a vacuous pass: every expected score past warm-up must
    // actually have been compared (a truncated --input would otherwise
    // report success after verifying only a prefix).
    const int64_t w = ensemble.config().window;
    const int64_t verifiable =
        static_cast<int64_t>(expected.size()) - (w - 1);
    if (scored == 0 || scored < verifiable) {
      std::cerr << "only " << scored << " of " << verifiable
                << " expected post-warm-up scores were verified (input or "
                   "expected-scores file truncated?)\n";
      return 1;
    }
    std::cerr << "streaming scores reproduce the offline batch scores ("
              << scored << " observations, tolerance " << tolerance << ")\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Multi-stream mode.
// ---------------------------------------------------------------------------

// `open,3` / `open,3,spot` / `close,3` control lines. Returns false for
// data lines; a threshold-policy suffix is legal only on open.
bool ParseControl(const std::string& line, std::string* verb, int64_t* id,
                  std::optional<core::ThresholdPolicy>* policy) {
  policy->reset();
  const size_t comma = line.find(',');
  if (comma == std::string::npos) return false;
  const std::string head = line.substr(0, comma);
  if (head != "open" && head != "close") return false;
  std::string rest = line.substr(comma + 1);
  const size_t second = rest.find(',');
  if (second != std::string::npos) {
    if (head != "open") return false;
    auto parsed = core::ParseThresholdPolicy(rest.substr(second + 1));
    if (!parsed.ok()) return false;
    *policy = parsed.value();
    rest.resize(second);
  }
  try {
    size_t consumed = 0;
    *id = std::stoll(rest, &consumed);
    if (consumed != rest.size()) return false;
  } catch (...) {
    return false;
  }
  *verb = head;
  return true;
}

// `3,0.5,1.2` — stream id, then the observation values.
bool ParseStreamObservation(const std::string& line, int64_t* id,
                            std::vector<float>* out) {
  const size_t comma = line.find(',');
  if (comma == std::string::npos) return false;
  try {
    size_t consumed = 0;
    *id = std::stoll(line.substr(0, comma), &consumed);
    if (consumed != comma) return false;
  } catch (...) {
    return false;
  }
  return ParseObservation(line.substr(comma + 1), out);
}

StatusOr<serve::ServeConfig> MultiStreamConfig(const cli::Args& args) {
  serve::ServeConfig config;
  config.max_batch = args.GetInt("max-batch", 8);
  config.flush_deadline_ms = args.GetInt("flush-ms", 50);
  config.num_shards = args.GetInt("shards", 1);
  config.max_pending = args.GetInt("max-pending", 0);
  config.drift_threshold = args.GetDouble("drift-threshold", 0.0);
  config.drift_clear = args.GetDouble("drift-clear", 0.0);
  if (config.max_batch < 1) {
    return Status::InvalidArgument("--max-batch must be >= 1");
  }
  if (config.num_shards < 1) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  if (config.max_pending < 0) {
    return Status::InvalidArgument("--max-pending must be >= 0");
  }
  if (args.Has("drift-threshold") && config.drift_threshold <= 0.0) {
    return Status::InvalidArgument("--drift-threshold must be > 0");
  }
  if (config.drift_clear < 0.0 ||
      (config.drift_clear > 0.0 &&
       config.drift_clear >= config.drift_threshold)) {
    return Status::InvalidArgument(
        "--drift-clear must be in (0, drift-threshold) — it is the "
        "re-arm level of the hysteresis");
  }
  config.health.enabled = args.Has("health");
  config.health.shift_threshold =
      args.GetDouble("health-shift", config.health.shift_threshold);
  config.health.dispersion_threshold =
      args.GetDouble("health-dispersion", config.health.dispersion_threshold);
  config.health.non_finite_threshold =
      args.GetDouble("health-nonfinite", config.health.non_finite_threshold);
  config.health.alert_threshold =
      args.GetDouble("health-alert", config.health.alert_threshold);
  config.health.probation_windows =
      args.GetInt("probation", config.health.probation_windows);
  if (!config.health.enabled &&
      (args.Has("health-shift") || args.Has("health-dispersion") ||
       args.Has("health-nonfinite") || args.Has("health-alert") ||
       args.Has("probation"))) {
    return Status::InvalidArgument(
        "--health-shift/--health-dispersion/--health-nonfinite/"
        "--health-alert/--probation require --health");
  }
  if (config.health.enabled &&
      (config.health.shift_threshold <= 0.0 ||
       config.health.dispersion_threshold <= 0.0 ||
       config.health.non_finite_threshold <= 0.0 ||
       config.health.alert_threshold <= 0.0 ||
       config.health.probation_windows < 1)) {
    return Status::InvalidArgument(
        "--health thresholds must be > 0 and --probation >= 1");
  }
  return config;
}

// Shared by both multi-stream modes: one drift poll, advisory on stderr.
// The DriftMonitor's hysteresis guarantees at most one advisory per
// excursion, so polling from both the line loop and the deadline flusher
// cannot double-report.
void PollDriftAdvisory(serve::ServingEngine& engine) {
  if (engine.config().drift_threshold <= 0.0) return;
  const auto repair = engine.PollDrift();
  if (!repair.has_value()) return;
  std::cerr << "drift alert: |exceed-rate shift| " << repair->drift
            << " over " << repair->drift_window
            << " recent scores on generation " << repair->generation
            << " exceeds --drift-threshold "
            << engine.config().drift_threshold
            << "; repair with caee_repair and hot-swap the result via "
               "`reload,<path>` (docs/operations.md)\n";
}

// Shared by both multi-stream modes: one health poll, excursions on
// stderr. Same double-report immunity as PollDriftAdvisory: the
// HealthMonitor's per-signal hysteresis fires each excursion once.
// A rollback notice names the restored generation so the operator knows
// the bad candidate is already out of service.
void PollHealthAdvisory(serve::ServingEngine& engine) {
  if (!engine.config().health.enabled) return;
  const auto event = engine.PollHealth();
  if (!event.has_value()) return;
  std::cerr << "health alert ("
            << serve::HealthVerdictName(event->verdict) << "): "
            << serve::HealthSignalName(event->signal) << " " << event->value
            << " over " << event->window
            << " recent scores on generation " << event->generation
            << " exceeds " << event->threshold;
  if (event->rolled_back) {
    std::cerr << "; rolled back to last-known-good generation "
              << event->rolled_back_to << " (docs/operations.md)\n";
  } else if (event->verdict == serve::HealthVerdict::kDataDrift) {
    std::cerr << "; the DATA has likely shifted — repair with caee_repair "
                 "and hot-swap the result via `reload,<path>` "
                 "(docs/operations.md)\n";
  } else {
    std::cerr << "; the MODEL looks degraded — hot-swap a known-good "
                 "artifact via `reload,<path>` (docs/operations.md)\n";
  }
}

// `health` admin line: report the live model-health gauges on stderr.
// Answered even without --health (says monitoring is off) so a generic
// operator script needs no mode flag.
void HandleTextHealth(serve::ServingEngine& engine) {
  if (!engine.config().health.enabled) {
    std::cerr << "health: monitoring off (serve with --health)\n";
    return;
  }
  const serve::EngineStats stats = engine.Stats();
  std::cerr << "health: generation " << stats.generation << ", "
            << stats.health_window << " recent scores, score-shift "
            << stats.score_shift << ", dispersion-ratio "
            << stats.dispersion_ratio << ", non-finite-rate "
            << stats.non_finite_rate << ", alert-rate " << stats.alert_rate
            << ", " << stats.canary_rejections << " canary rejection(s), "
            << stats.rollbacks << " rollback(s)\n";
}

// `reload,<path>` admin line: hot-swap with zero downtime. A failure is
// DEGRADED MODE, not fatal — the engine keeps serving the old generation
// and the error (which names the live generation) goes to stderr.
void HandleTextReload(serve::ServingEngine& engine, const std::string& path) {
  auto swapped = engine.ReloadArtifact(path);
  if (swapped.ok()) {
    std::cerr << "reloaded: now serving generation " << swapped.value()
              << " from " << path << "\n";
  } else {
    std::cerr << "caee_serve: " << swapped.status() << "\n";
  }
}

int RunMultiStream(const cli::Args& args, core::CaeEnsemble& ensemble,
                   std::optional<double> threshold,
                   core::ThresholdPolicy policy,
                   const std::optional<core::SpotInit>& spot,
                   const std::optional<core::HealthRef>& health,
                   std::istream& in) {
  auto config_or = MultiStreamConfig(args);
  if (!config_or.ok()) return Fail(config_or.status());
  serve::ServeConfig config = config_or.value();
  config.threshold_policy = policy;
  serve::ServingEngine engine(&ensemble, config, threshold, spot, health);

  // Delivery is the single tally point: scores can arrive from the main
  // loop OR from the deadline timer below, and both must count toward the
  // end-of-run summary.
  std::mutex out_mu;
  int64_t scored = 0, alerts = 0;
  auto deliver = [&](const std::vector<serve::StreamScore>& results) {
    if (results.empty()) return;
    std::lock_guard<std::mutex> lock(out_mu);
    for (const auto& r : results) {
      ++scored;
      alerts += r.flag;
      std::cout << r.stream_id << "," << r.index << "," << r.score << ","
                << (r.flag ? 1 : 0) << "\n";
    }
    std::cout.flush();
  };

  // Deadline timer: stdin can stall with a partially filled batch pending;
  // this thread keeps the flush-deadline promise regardless. A failing
  // flush is not swallowed: it parks the status for the main loop to
  // report and stops retrying.
  std::atomic<bool> done{false};
  std::mutex flusher_status_mu;
  Status flusher_status;  // guarded by flusher_status_mu
  std::thread flusher;
  if (config.flush_deadline_ms > 0) {
    flusher = std::thread([&] {
      const auto tick =
          std::chrono::milliseconds(std::max<int64_t>(
              1, config.flush_deadline_ms / 2));
      while (!done.load()) {
        std::this_thread::sleep_for(tick);
        std::vector<serve::StreamScore> results;
        const Status status = engine.FlushIfExpired(&results);
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(flusher_status_mu);
          flusher_status = status;
          return;
        }
        deliver(results);
        PollDriftAdvisory(engine);
        PollHealthAdvisory(engine);
      }
    });
  }
  auto stop_flusher = [&] {
    done.store(true);
    if (flusher.joinable()) flusher.join();
  };
  auto check_flusher = [&]() -> Status {
    std::lock_guard<std::mutex> lock(flusher_status_mu);
    return flusher_status;
  };

  std::string line;
  std::vector<float> observation;
  int64_t line_no = 0;
  while (!g_shutdown && std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (Status status = check_flusher(); !status.ok()) {
      stop_flusher();
      return Fail(Status(status.code(),
                         "deadline flush failed: " + status.message()));
    }
    if (line.rfind("reload,", 0) == 0) {
      HandleTextReload(engine, line.substr(7));
      continue;
    }
    if (line == "health") {
      HandleTextHealth(engine);
      continue;
    }
    std::vector<serve::StreamScore> results;
    Status status;
    std::string verb;
    int64_t id = 0;
    std::optional<core::ThresholdPolicy> open_policy;
    if (ParseControl(line, &verb, &id, &open_policy)) {
      status = verb == "open"
                   ? (open_policy.has_value()
                          ? engine.OpenStream(id, *open_policy)
                          : engine.OpenStream(id))
                   : engine.CloseStream(id, &results);
    } else if (ParseStreamObservation(line, &id, &observation)) {
      status = engine.Push(id, observation, &results);
    } else {
      stop_flusher();
      return Fail(Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          " is neither `open,<id>[,static|spot]`/`close,<id>` nor "
          "`<id>,v1,v2,...`"));
    }
    if (!status.ok()) {
      stop_flusher();
      return Fail(Status(status.code(), "line " + std::to_string(line_no) +
                                            ": " + status.message()));
    }
    deliver(results);
    PollDriftAdvisory(engine);
    PollHealthAdvisory(engine);
  }

  // End of input (or a shutdown signal): drain the queue, then stop the
  // timer — scores already owed are delivered, not dropped.
  if (g_shutdown) {
    std::cerr << "caee_serve: caught shutdown signal, draining shards\n";
  }
  std::vector<serve::StreamScore> results;
  const Status status = engine.Flush(&results);
  stop_flusher();
  if (!status.ok()) return Fail(status);
  if (Status parked = check_flusher(); !parked.ok()) {
    return Fail(Status(parked.code(),
                       "deadline flush failed: " + parked.message()));
  }
  deliver(results);

  const serve::EngineStats stats = engine.Stats();
  std::cerr << "scored " << scored << " windows across streams, " << alerts
            << " flagged, " << stats.non_finite_scores
            << " non-finite scores (" << engine.num_streams()
            << " sessions still open at EOF)\n";
  if (stats.reloads + stats.failed_reloads > 0) {
    std::cerr << "generation " << stats.generation << " live after "
              << stats.reloads << " reload(s), " << stats.failed_reloads
              << " rejected\n";
  }
  if (engine.spot() != nullptr) {
    std::cerr << "drift: |exceed-rate shift| " << stats.drift << " over "
              << stats.drift_window << " recent scores vs the calibration "
              << "baseline (docs/thresholds.md)\n";
  }
  if (config.health.enabled) {
    std::cerr << "health: " << stats.canary_rejections
              << " canary rejection(s), " << stats.rollbacks
              << " rollback(s), gauges over " << stats.health_window
              << " recent scores: score-shift " << stats.score_shift
              << ", dispersion-ratio " << stats.dispersion_ratio
              << ", non-finite-rate " << stats.non_finite_rate
              << ", alert-rate " << stats.alert_rate
              << " (docs/operations.md)\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Binary-protocol multi-stream mode (docs/protocol.md).
// ---------------------------------------------------------------------------

int RunMultiStreamBinary(const cli::Args& args, core::CaeEnsemble& ensemble,
                         std::optional<double> threshold,
                         core::ThresholdPolicy policy,
                         const std::optional<core::SpotInit>& spot,
                         const std::optional<core::HealthRef>& health,
                         std::istream& in) {
  namespace fr = serve::framing;
  auto config_or = MultiStreamConfig(args);
  if (!config_or.ok()) return Fail(config_or.status());
  serve::ServeConfig config = config_or.value();
  config.threshold_policy = policy;
  serve::ServingEngine engine(&ensemble, config, threshold, spot, health);

  // One serialisation point for response frames: scores can come from the
  // main loop or the deadline timer, and frames must never interleave
  // mid-frame on the wire.
  std::mutex out_mu;
  int64_t scored = 0, alerts = 0, backpressured = 0;
  auto respond = [&](const fr::Frame& frame) {
    std::lock_guard<std::mutex> lock(out_mu);
    fr::WriteFrame(std::cout, frame);
  };
  auto deliver = [&](const std::vector<serve::StreamScore>& results) {
    if (results.empty()) return;
    std::lock_guard<std::mutex> lock(out_mu);
    for (const auto& r : results) {
      ++scored;
      alerts += r.flag;
      fr::WriteFrame(std::cout, fr::MakeScoreFrame(r));
    }
    std::cout.flush();
  };

  std::atomic<bool> done{false};
  std::mutex flusher_status_mu;
  Status flusher_status;  // guarded by flusher_status_mu
  std::thread flusher;
  if (config.flush_deadline_ms > 0) {
    flusher = std::thread([&] {
      const auto tick = std::chrono::milliseconds(
          std::max<int64_t>(1, config.flush_deadline_ms / 2));
      while (!done.load()) {
        std::this_thread::sleep_for(tick);
        std::vector<serve::StreamScore> results;
        const Status status = engine.FlushIfExpired(&results);
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(flusher_status_mu);
          flusher_status = status;
          return;
        }
        deliver(results);
        PollDriftAdvisory(engine);
        PollHealthAdvisory(engine);
      }
    });
  }
  auto stop_flusher = [&] {
    done.store(true);
    if (flusher.joinable()) flusher.join();
  };
  auto check_flusher = [&]() -> Status {
    std::lock_guard<std::mutex> lock(flusher_status_mu);
    return flusher_status;
  };

  // Tenant-level rejections (unknown stream, width mismatch, double open,
  // full shard) are ANSWERED — an error or backpressure frame — and the
  // server keeps serving; only wire-level corruption (truncation, CRC,
  // version skew) is fatal, because a byte stream cannot resync past it.
  fr::Frame frame;
  std::vector<float> observation;
  std::vector<serve::StreamScore> results;
  int64_t frame_no = 0;
  while (!g_shutdown) {
    if (Status status = check_flusher(); !status.ok()) {
      stop_flusher();
      return Fail(Status(status.code(),
                         "deadline flush failed: " + status.message()));
    }
    bool eof = false;
    if (Status status = fr::ReadFrame(in, &frame, &eof); !status.ok()) {
      // A frame cut mid-read by the shutdown signal (EINTR) is the signal
      // doing its job, not wire corruption: stop intake and drain.
      if (g_shutdown) break;
      stop_flusher();
      return Fail(Status(status.code(), "frame " + std::to_string(frame_no) +
                                            ": " + status.message()));
    }
    if (eof) break;
    ++frame_no;
    results.clear();
    switch (frame.frame_type()) {
      case fr::FrameType::kOpen: {
        // An empty payload opens with the server's default policy; a
        // 1-byte payload selects per session (docs/protocol.md). A
        // malformed payload is a tenant error, answered not fatal.
        std::optional<core::ThresholdPolicy> open_policy;
        Status status = fr::ParseOpenPolicy(frame, &open_policy);
        if (status.ok()) {
          status = open_policy.has_value()
                       ? engine.OpenStream(frame.stream_id, *open_policy)
                       : engine.OpenStream(frame.stream_id);
        }
        respond(status.ok() ? fr::MakeOkFrame(frame.stream_id)
                            : fr::MakeErrorFrame(frame.stream_id, status));
        break;
      }
      case fr::FrameType::kClose: {
        const Status status = engine.CloseStream(frame.stream_id, &results);
        deliver(results);
        respond(status.ok() ? fr::MakeOkFrame(frame.stream_id)
                            : fr::MakeErrorFrame(frame.stream_id, status));
        break;
      }
      case fr::FrameType::kObserve: {
        if (Status status = fr::ParseObserve(frame, &observation);
            !status.ok()) {
          respond(fr::MakeErrorFrame(frame.stream_id, status));
          break;
        }
        const Status status =
            engine.Push(frame.stream_id, observation, &results);
        if (status.code() == StatusCode::kResourceExhausted) {
          ++backpressured;
          respond(fr::MakeBackpressureFrame(frame.stream_id));
        } else if (!status.ok()) {
          respond(fr::MakeErrorFrame(frame.stream_id, status));
        } else {
          deliver(results);
        }
        break;
      }
      case fr::FrameType::kFlush: {
        const Status status = engine.Flush(&results);
        deliver(results);
        if (!status.ok()) {
          respond(fr::MakeErrorFrame(0, status));
        }
        break;
      }
      case fr::FrameType::kReload: {
        // Admin hot-swap. A rejected candidate is answered with an error
        // frame (the engine keeps serving the old generation); only the
        // wire layer can be fatal here.
        std::string path;
        Status status = fr::ParseReload(frame, &path);
        if (status.ok()) {
          auto swapped = engine.ReloadArtifact(path);
          if (swapped.ok()) {
            std::cerr << "reloaded: now serving generation "
                      << swapped.value() << " from " << path << "\n";
          } else {
            status = swapped.status();
          }
        }
        respond(status.ok() ? fr::MakeOkFrame(frame.stream_id)
                            : fr::MakeErrorFrame(frame.stream_id, status));
        break;
      }
      case fr::FrameType::kHealth: {
        // Admin health report: always answered, even without --health
        // (enabled=false, gauges zero) — monitoring clients need no mode
        // flag. Counters come from the same EngineStats the text mode
        // prints (aggregation contract in serve/shard.h).
        const serve::EngineStats stats = engine.Stats();
        fr::HealthStatus health_status;
        health_status.enabled = config.health.enabled;
        health_status.generation = stats.generation;
        health_status.window = stats.health_window;
        health_status.score_shift = stats.score_shift;
        health_status.dispersion_ratio = stats.dispersion_ratio;
        health_status.non_finite_rate = stats.non_finite_rate;
        health_status.alert_rate = stats.alert_rate;
        health_status.rollbacks = stats.rollbacks;
        health_status.canary_rejections = stats.canary_rejections;
        respond(fr::MakeHealthStatusFrame(health_status));
        break;
      }
      default:
        respond(fr::MakeErrorFrame(
            frame.stream_id,
            Status::InvalidArgument("unknown frame type " +
                                    std::to_string(frame.type))));
        break;
    }
    PollDriftAdvisory(engine);
    PollHealthAdvisory(engine);
  }

  // End of input (or a shutdown signal): drain every shard, then stop the
  // timer.
  if (g_shutdown) {
    std::cerr << "caee_serve: caught shutdown signal, draining shards\n";
  }
  results.clear();
  const Status status = engine.Flush(&results);
  stop_flusher();
  if (!status.ok()) return Fail(status);
  if (Status parked = check_flusher(); !parked.ok()) {
    return Fail(Status(parked.code(),
                       "deadline flush failed: " + parked.message()));
  }
  deliver(results);
  std::cout.flush();

  const serve::EngineStats stats = engine.Stats();
  std::cerr << "scored " << scored << " windows across streams, " << alerts
            << " flagged, " << stats.non_finite_scores
            << " non-finite scores, " << backpressured
            << " pushes backpressured (" << engine.num_streams()
            << " sessions still open at EOF, " << config.num_shards
            << " shards)\n";
  if (stats.reloads + stats.failed_reloads > 0) {
    std::cerr << "generation " << stats.generation << " live after "
              << stats.reloads << " reload(s), " << stats.failed_reloads
              << " rejected\n";
  }
  if (engine.spot() != nullptr) {
    std::cerr << "drift: |exceed-rate shift| " << stats.drift << " over "
              << stats.drift_window << " recent scores vs the calibration "
              << "baseline (docs/thresholds.md)\n";
  }
  if (config.health.enabled) {
    std::cerr << "health: " << stats.canary_rejections
              << " canary rejection(s), " << stats.rollbacks
              << " rollback(s), gauges over " << stats.health_window
              << " recent scores: score-shift " << stats.score_shift
              << ", dispersion-ratio " << stats.dispersion_ratio
              << ", non-finite-rate " << stats.non_finite_rate
              << ", alert-rate " << stats.alert_rate
              << " (docs/operations.md)\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Translator modes: text protocol <-> binary framing (no model involved).
// ---------------------------------------------------------------------------

int RunEncodeFrames(std::istream& in) {
  namespace fr = serve::framing;
  std::string line;
  std::vector<float> observation;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind("reload,", 0) == 0) {
      fr::WriteFrame(std::cout, fr::MakeReloadFrame(line.substr(7)));
      continue;
    }
    if (line == "health") {
      fr::WriteFrame(std::cout, fr::MakeHealthFrame());
      continue;
    }
    std::string verb;
    int64_t id = 0;
    std::optional<core::ThresholdPolicy> open_policy;
    if (ParseControl(line, &verb, &id, &open_policy)) {
      fr::Frame frame;
      if (verb == "close") {
        frame = fr::MakeCloseFrame(id);
      } else if (open_policy.has_value()) {
        frame = fr::MakeOpenFrame(id, *open_policy);
      } else {
        frame = fr::MakeOpenFrame(id);
      }
      fr::WriteFrame(std::cout, frame);
    } else if (ParseStreamObservation(line, &id, &observation)) {
      fr::WriteFrame(std::cout, fr::MakeObserveFrame(id, observation));
    } else {
      return Fail(Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          " is neither `open,<id>[,static|spot]`/`close,<id>` nor "
          "`<id>,v1,v2,...`"));
    }
  }
  std::cout.flush();
  return 0;
}

int RunDecodeFrames(std::istream& in) {
  namespace fr = serve::framing;
  fr::Frame frame;
  int64_t frame_no = 0, errors = 0;
  while (true) {
    bool eof = false;
    if (Status status = fr::ReadFrame(in, &frame, &eof); !status.ok()) {
      return Fail(Status(status.code(), "frame " + std::to_string(frame_no) +
                                            ": " + status.message()));
    }
    if (eof) break;
    ++frame_no;
    switch (frame.frame_type()) {
      case fr::FrameType::kScore: {
        serve::StreamScore score;
        if (Status status = fr::ParseScore(frame, &score); !status.ok()) {
          return Fail(status);
        }
        std::cout << score.stream_id << "," << score.index << ","
                  << score.score << "," << (score.flag ? 1 : 0) << "\n";
        break;
      }
      case fr::FrameType::kOk:
        break;  // open/close ack: nothing to print
      case fr::FrameType::kBackpressure:
        std::cerr << "backpressure: stream " << frame.stream_id
                  << " rejected (shard pending pool full)\n";
        break;
      case fr::FrameType::kError: {
        Status error;
        if (Status status = fr::ParseError(frame, &error); !status.ok()) {
          return Fail(status);
        }
        std::cerr << "server error for stream " << frame.stream_id << ": "
                  << error << "\n";
        ++errors;
        break;
      }
      case fr::FrameType::kHealthStatus: {
        // Mirrors HandleTextHealth so the translator pipeline's stderr
        // matches the text server's (docs/protocol.md).
        fr::HealthStatus hs;
        if (Status status = fr::ParseHealthStatus(frame, &hs);
            !status.ok()) {
          return Fail(status);
        }
        if (!hs.enabled) {
          std::cerr << "health: monitoring off (serve with --health)\n";
        } else {
          std::cerr << "health: generation " << hs.generation << ", "
                    << hs.window << " recent scores, score-shift "
                    << hs.score_shift << ", dispersion-ratio "
                    << hs.dispersion_ratio << ", non-finite-rate "
                    << hs.non_finite_rate << ", alert-rate " << hs.alert_rate
                    << ", " << hs.canary_rejections
                    << " canary rejection(s), " << hs.rollbacks
                    << " rollback(s)\n";
        }
        break;
      }
      default:
        return Fail(Status::InvalidArgument(
            "unexpected frame type " + std::to_string(frame.type) +
            " in a response stream"));
    }
  }
  std::cout.flush();
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.RejectUnknown({"model", "input", "threads", "expect-scores",
                      "tolerance", "streams", "max-batch", "flush-ms",
                      "shards", "max-pending", "binary", "threshold-policy",
                      "drift-threshold", "drift-clear", "health",
                      "health-shift", "health-dispersion", "health-nonfinite",
                      "health-alert", "probation", "encode-frames",
                      "decode-frames", "help"},
                     kUsage);
  if (args.Has("help")) {
    std::cerr << kUsage;
    return 0;
  }

  // Translator modes are pure wire-format conversions — no model, no
  // engine. They reject every serving flag so a typo'd serving invocation
  // cannot silently degrade into a translator.
  if (args.Has("encode-frames") || args.Has("decode-frames")) {
    for (const char* flag :
         {"model", "threads", "expect-scores", "tolerance", "streams",
          "max-batch", "flush-ms", "shards", "max-pending", "binary",
          "threshold-policy", "drift-threshold", "drift-clear", "health",
          "health-shift", "health-dispersion", "health-nonfinite",
          "health-alert", "probation"}) {
      if (args.Has(flag)) {
        std::cerr << "--encode-frames/--decode-frames take only --input\n"
                  << kUsage;
        return 2;
      }
    }
    if (args.Has("encode-frames") && args.Has("decode-frames")) {
      std::cerr << "pick one of --encode-frames / --decode-frames\n"
                << kUsage;
      return 2;
    }
    std::ifstream file;
    if (args.Has("input")) {
      file.open(args.Get("input", ""), std::ios::binary);
      if (!file) return Fail(Status::IOError("cannot open input file"));
    }
    std::istream& in = args.Has("input") ? file : std::cin;
    std::cout.precision(std::numeric_limits<double>::max_digits10);
    return args.Has("encode-frames") ? RunEncodeFrames(in)
                                     : RunDecodeFrames(in);
  }

  if (!args.Has("model")) {
    std::cerr << kUsage;
    return 2;
  }
  if (!args.Has("streams") &&
      (args.Has("max-batch") || args.Has("flush-ms") || args.Has("shards") ||
       args.Has("max-pending") || args.Has("binary") ||
       args.Has("drift-threshold") || args.Has("drift-clear") ||
       args.Has("health") || args.Has("health-shift") ||
       args.Has("health-dispersion") || args.Has("health-nonfinite") ||
       args.Has("health-alert") || args.Has("probation"))) {
    std::cerr << "--max-batch/--flush-ms/--shards/--max-pending/--binary/"
                 "--drift-threshold/--drift-clear/--health (and its knobs) "
                 "require --streams\n"
              << kUsage;
    return 2;
  }
  if (args.Has("streams") &&
      (args.Has("expect-scores") || args.Has("tolerance"))) {
    // Refusing beats silently skipping the cross-check: a "verification"
    // run that verified nothing must not exit 0.
    std::cerr << "--expect-scores/--tolerance are single-stream only\n"
              << kUsage;
    return 2;
  }

  auto loaded = core::LoadEnsemble(args.Get("model", ""));
  if (!loaded.ok()) return Fail(loaded.status());
  core::CaeEnsemble& ensemble = *loaded->ensemble;
  ensemble.set_num_threads(args.GetInt("threads", 0));
  const double threshold =
      loaded->threshold.value_or(std::numeric_limits<double>::infinity());

  core::ThresholdPolicy policy = core::ThresholdPolicy::kStatic;
  if (args.Has("threshold-policy")) {
    auto parsed =
        core::ParseThresholdPolicy(args.Get("threshold-policy", ""));
    if (!parsed.ok()) return Fail(parsed.status());
    policy = *parsed;
  }
  if (policy == core::ThresholdPolicy::kSpot && !loaded->spot.has_value()) {
    return Fail(Status::FailedPrecondition(
        "--threshold-policy spot needs SPOT init params in the artifact; "
        "retrain with caee_train --spot (docs/thresholds.md)"));
  }
  if (args.GetDouble("drift-threshold", 0.0) > 0.0 &&
      !loaded->spot.has_value()) {
    // Drift is measured against the SPOT calibration baseline — without
    // one the statistic is identically zero and the monitor could never
    // fire. Refusing beats a silent no-op "armed" monitor.
    return Fail(Status::FailedPrecondition(
        "--drift-threshold needs SPOT init params in the artifact; "
        "retrain with caee_train --spot (docs/operations.md)"));
  }
  if (args.Has("health") && !loaded->health.has_value()) {
    // Health is judged against the artifact's own calibration reference —
    // without one there is nothing to compare live traffic to. Refusing
    // beats a monitor that silently can never fire.
    return Fail(Status::FailedPrecondition(
        "--health needs a model-health reference in the artifact; "
        "retrain with caee_train --health (docs/operations.md)"));
  }

  std::cerr << "loaded ensemble: " << ensemble.num_models() << " models, "
            << "window " << ensemble.config().window << ", "
            << ensemble.input_dim() << " dims"
            << (loaded->threshold ? ", threshold " + std::to_string(threshold)
                                  : ", no threshold (flag always 0)")
            << (loaded->spot ? ", spot-calibrated" : "")
            << (loaded->health ? ", health-calibrated" : "") << "\n";

  std::ifstream file;
  if (args.Has("input")) {
    // Binary so frame bytes pass through untranslated; harmless for text.
    file.open(args.Get("input", ""), std::ios::binary);
    if (!file) return Fail(Status::IOError("cannot open input file"));
  }
  std::istream& in = args.Has("input") ? file : std::cin;
  std::cout.precision(std::numeric_limits<double>::max_digits10);

  InstallShutdownHandler();
  if (args.Has("streams")) {
    if (args.Has("binary")) {
      return RunMultiStreamBinary(args, ensemble, loaded->threshold, policy,
                                  loaded->spot, loaded->health, in);
    }
    return RunMultiStream(args, ensemble, loaded->threshold, policy,
                          loaded->spot, loaded->health, in);
  }
  return RunSingleStream(args, ensemble, threshold, policy, loaded->spot, in);
}

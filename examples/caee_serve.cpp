// caee_serve: the ONLINE half of the train/serve split (paper Sec. 4.2.7).
//
// Loads an artifact written by caee_train in a fresh process — no access to
// the training data or code path — and feeds observations line-by-line
// through StreamingScorer: each CSV line is one observation, each warm
// observation gets a score and a threshold verdict on stdout. This is the
// frozen-forward-pass serving loop the ROADMAP's heavy-traffic story builds
// on.
//
//   caee_train --synthetic SMD --output model.caee --dump-input train.csv
//   caee_serve --model model.caee --input train.csv
//   tail -f live.csv | caee_serve --model model.caee
//
// With --expect-scores FILE (the batch scores caee_train dumped), the tool
// verifies that the streaming path reproduces the offline scores for every
// post-warm-up observation and exits non-zero on any mismatch — the
// round-trip check CI runs.

#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.h"
#include "core/persistence.h"
#include "core/streaming.h"

using namespace caee;

namespace {

const char kUsage[] =
    "usage: caee_serve --model model.caee [--input obs.csv] [--threads T]\n"
    "                  [--expect-scores scores.txt [--tolerance X]]\n"
    "  Reads comma-separated observations from --input (default: stdin) and\n"
    "  prints `index,score,flag` per scored observation (flag=1 above the\n"
    "  calibrated threshold). --expect-scores cross-checks the streaming\n"
    "  scores against offline batch scores and fails on mismatch.\n";

int Fail(const Status& status) {
  std::cerr << "caee_serve: " << status << "\n";
  return 1;
}

bool ParseObservation(const std::string& line, std::vector<float>* out) {
  out->clear();
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    try {
      size_t consumed = 0;
      const float value = std::stof(cell, &consumed);
      if (consumed != cell.size()) return false;  // "1.2.3" etc.
      out->push_back(value);
    } catch (...) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.RejectUnknown(
      {"model", "input", "threads", "expect-scores", "tolerance", "help"},
      kUsage);
  if (args.Has("help") || !args.Has("model")) {
    std::cerr << kUsage;
    return args.Has("help") ? 0 : 2;
  }

  auto loaded = core::LoadEnsemble(args.Get("model", ""));
  if (!loaded.ok()) return Fail(loaded.status());
  core::CaeEnsemble& ensemble = *loaded->ensemble;
  ensemble.set_num_threads(args.GetInt("threads", 0));
  const double threshold =
      loaded->threshold.value_or(std::numeric_limits<double>::infinity());
  std::cerr << "loaded ensemble: " << ensemble.num_models() << " models, "
            << "window " << ensemble.config().window << ", "
            << ensemble.input_dim() << " dims"
            << (loaded->threshold ? ", threshold " + std::to_string(threshold)
                                  : ", no threshold (flag always 0)")
            << "\n";

  std::vector<double> expected;
  if (args.Has("expect-scores")) {
    std::ifstream in(args.Get("expect-scores", ""));
    if (!in) {
      return Fail(Status::IOError("cannot open expected-scores file"));
    }
    double value = 0.0;
    while (in >> value) expected.push_back(value);
    if (expected.empty()) {
      return Fail(Status::InvalidArgument(
          "expected-scores file has no scores — nothing would be verified"));
    }
  }
  const double tolerance = args.GetDouble("tolerance", 0.0);

  std::ifstream file;
  if (args.Has("input")) {
    file.open(args.Get("input", ""));
    if (!file) return Fail(Status::IOError("cannot open input file"));
  }
  std::istream& in = args.Has("input") ? file : std::cin;

  core::StreamingScorer scorer(&ensemble);
  std::cout.precision(std::numeric_limits<double>::max_digits10);
  std::string line;
  std::vector<float> observation;
  int64_t index = -1, scored = 0, alerts = 0, mismatches = 0;
  double worst_diff = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++index;
    if (!ParseObservation(line, &observation)) {
      return Fail(Status::InvalidArgument("non-numeric observation at line " +
                                          std::to_string(index + 1)));
    }
    auto result = scorer.Push(observation);
    if (!result.ok()) return Fail(result.status());
    if (!result->has_value()) continue;  // warming up
    const double score = result->value();
    const bool flag = score > threshold;
    ++scored;
    alerts += flag;
    std::cout << index << "," << score << "," << (flag ? 1 : 0) << "\n";
    if (!expected.empty()) {
      // Batch scores cover every observation, but the first w-1 are scored
      // from the first window only in the batch policy (Fig. 10) and are
      // unavailable while streaming warms up — so compare from w-1 onward.
      if (index >= static_cast<int64_t>(expected.size())) {
        return Fail(Status::InvalidArgument(
            "more observations than expected scores"));
      }
      const double diff =
          std::fabs(score - expected[static_cast<size_t>(index)]);
      if (!(diff <= tolerance)) {
        ++mismatches;
        worst_diff = std::max(worst_diff, diff);
        if (mismatches <= 5) {
          std::cerr << "MISMATCH at " << index << ": streaming " << score
                    << " vs batch " << expected[static_cast<size_t>(index)]
                    << "\n";
        }
      }
    }
  }

  std::cerr << "scored " << scored << " observations, " << alerts
            << " above threshold\n";
  if (!expected.empty()) {
    if (mismatches > 0) {
      std::cerr << mismatches << " streaming/batch mismatches (worst |diff| "
                << worst_diff << ")\n";
      return 1;
    }
    // Guard against a vacuous pass: every expected score past warm-up must
    // actually have been compared (a truncated --input would otherwise
    // report success after verifying only a prefix).
    const int64_t w = ensemble.config().window;
    const int64_t verifiable =
        static_cast<int64_t>(expected.size()) - (w - 1);
    if (scored == 0 || scored < verifiable) {
      std::cerr << "only " << scored << " of " << verifiable
                << " expected post-warm-up scores were verified (input or "
                   "expected-scores file truncated?)\n";
      return 1;
    }
    std::cerr << "streaming scores reproduce the offline batch scores ("
              << scored << " observations, tolerance " << tolerance << ")\n";
  }
  return 0;
}

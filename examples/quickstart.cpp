// Quickstart: train a CAE-Ensemble on a clean series, score a test series,
// and flag outliers with a top-K% threshold. This is the smallest complete
// use of the public API.

#include <iostream>

#include "core/ensemble.h"
#include "data/registry.h"
#include "metrics/metrics.h"

using namespace caee;

int main() {
  // 1. Get data. Here: the generated SMD-like server-metrics profile.
  //    To use your own data, load CSVs via data::LoadCsvDataset(...).
  auto ds = data::MakeDataset("SMD", /*scale=*/0.3, /*seed=*/42);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  std::cout << "dataset: " << ds->name << ", dims=" << ds->train.dims()
            << ", train=" << ds->train.length()
            << ", test=" << ds->test.length() << "\n";

  // 2. Configure the ensemble. Defaults follow the paper; the sizes below
  //    are scaled for a quick CPU run.
  core::EnsembleConfig config;
  config.window = 16;            // sliding-window length w
  config.num_models = 4;         // basic models M
  config.epochs_per_model = 4;   // n training epochs per basic model
  config.lambda = 0.5f;          // diversity weight (Eq. 13)
  config.beta = 0.5f;            // parameter-transfer fraction (Fig. 9)
  config.cae.embed_dim = 0;      // embedding dimension D' (0 = auto-size)
  config.cae.num_layers = 2;     // conv layers per encoder/decoder
  config.batch_size = 32;
  config.lr = 2e-3f;
  config.max_train_windows = 256;

  // 3. Train (unsupervised: labels are never read).
  core::CaeEnsemble ensemble(config);
  if (Status s = ensemble.Fit(ds->train); !s.ok()) {
    std::cerr << "Fit failed: " << s << "\n";
    return 1;
  }
  std::cout << "trained " << ensemble.num_models() << " basic models in "
            << ensemble.train_stats().train_seconds << "s ("
            << ensemble.train_stats().parameters_per_model
            << " parameters each)\n";

  // 4. Score the test series: one outlier score per observation.
  auto scores = ensemble.Score(ds->test);
  if (!scores.ok()) {
    std::cerr << "Score failed: " << scores.status() << "\n";
    return 1;
  }

  // 5. Threshold. With a known (or assumed) outlier ratio, flag the top-K%.
  const double k_percent = ds->test.OutlierRatio() * 100.0;
  const double threshold = metrics::TopKThreshold(*scores, k_percent);
  int64_t flagged = 0;
  for (double s : *scores) flagged += (s > threshold);
  std::cout << "flagged " << flagged << " / " << scores->size()
            << " observations as outliers (top " << k_percent << "%)\n";

  // 6. Because this dataset is labelled, we can report accuracy.
  std::vector<int> labels(ds->test.labels().begin(), ds->test.labels().end());
  const auto report = metrics::Evaluate(*scores, labels);
  std::cout << "best-F1 = " << report.f1 << ", PR-AUC = " << report.pr_auc
            << ", ROC-AUC = " << report.roc_auc << "\n";
  return 0;
}

// Table 5: ablation study on ECG and SMAP — remove the attention module, the
// diversity-driven training (+ parameter transfer), the ensemble, and the
// re-scaling pre-processing, one at a time, and compare against the full
// CAE-Ensemble.

#include <iostream>

#include "bench_util.h"
#include "core/ensemble.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

namespace {

struct Variant {
  std::string name;
  core::EnsembleConfig config;
};

std::vector<Variant> MakeVariants(const core::EnsembleConfig& base) {
  std::vector<Variant> variants;
  {
    core::EnsembleConfig c = base;
    c.cae.attention = core::AttentionMode::kNone;
    variants.push_back({"No attention", c});
  }
  {
    core::EnsembleConfig c = base;
    c.diversity_enabled = false;  // basic models trained independently
    c.transfer_enabled = false;
    variants.push_back({"No diversity", c});
  }
  {
    core::EnsembleConfig c = base;
    c.num_models = 1;
    c.diversity_enabled = false;
    c.transfer_enabled = false;
    variants.push_back({"No ensemble", c});
  }
  {
    core::EnsembleConfig c = base;
    c.rescale_enabled = false;
    variants.push_back({"No re-scaling", c});
  }
  variants.push_back({"CAE-Ensemble", base});
  return variants;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::Flags::Parse(argc, argv);
  std::cout << "=== Table 5: ablation study (scale=" << flags.scale
            << ", M=" << flags.models << ") ===\n\n";

  for (const std::string ds_name : {"ECG", "SMAP"}) {
    auto ds = data::MakeDataset(ds_name, flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }

    core::EnsembleConfig base;
    base.cae.embed_dim = 0;  // auto-size
    base.cae.num_layers = 2;
    base.window = 16;
    base.num_models = flags.models;
    base.epochs_per_model = flags.epochs;
    base.max_train_windows = 256;
    const auto paper = eval::Table2Hyperparameters(ds_name);
    base.beta = paper.beta;
    base.lambda =
        flags.lambda >= 0 ? static_cast<float>(flags.lambda) : 0.5f;
    base.seed = flags.seed;

    eval::TablePrinter table(
        {"Variant", "Precision", "Recall", "F1", "PR", "ROC"});
    for (const auto& variant : MakeVariants(base)) {
      core::CaeEnsemble ensemble(variant.config);
      Status fit = ensemble.Fit(ds->train);
      if (!fit.ok()) {
        std::cerr << variant.name << ": " << fit << "\n";
        return 1;
      }
      auto scores = ensemble.Score(ds->test);
      if (!scores.ok()) {
        std::cerr << variant.name << ": " << scores.status() << "\n";
        return 1;
      }
      const auto labels = eval::TestLabels(ds->test);
      const auto r = metrics::Evaluate(*scores, labels);
      table.AddRow({variant.name, eval::FormatDouble(r.precision),
                    eval::FormatDouble(r.recall), eval::FormatDouble(r.f1),
                    eval::FormatDouble(r.pr_auc),
                    eval::FormatDouble(r.roc_auc)});
    }
    std::cout << "--- " << ds_name << " ---\n" << table.ToString() << "\n";
  }
  return 0;
}

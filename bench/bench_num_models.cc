// Figure 16: accuracy (PR, ROC) as the number of basic models grows. Trains
// one ensemble with the maximum M and evaluates every prefix {f_1..f_k}, so
// the curve reflects exactly the paper's "ensemble grows during training"
// protocol.

#include <iostream>

#include "bench_util.h"
#include "core/ensemble.h"
#include "core/scoring.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

int main(int argc, char** argv) {
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int64_t max_models = std::max<int64_t>(flags.models, 8);
  std::cout << "=== Figure 16: effect of the number of basic models (1.."
            << max_models << ") ===\n\n";

  for (const std::string ds_name : {"ECG", "SMAP"}) {
    auto ds = data::MakeDataset(ds_name, flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }
    core::EnsembleConfig cfg;
    cfg.cae.embed_dim = 0;  // auto-size
    cfg.cae.num_layers = 2;
    cfg.window = 16;
    cfg.num_models = max_models;
    cfg.epochs_per_model = flags.epochs;
    cfg.max_train_windows = 256;
    if (flags.lambda >= 0) cfg.lambda = static_cast<float>(flags.lambda);
    if (flags.beta >= 0) cfg.beta = static_cast<float>(flags.beta);
    cfg.seed = flags.seed;
    core::CaeEnsemble ensemble(cfg);
    if (!ensemble.Fit(ds->train).ok()) return 1;

    auto per_model = ensemble.PerModelScores(ds->test);
    if (!per_model.ok()) {
      std::cerr << per_model.status() << "\n";
      return 1;
    }
    const auto labels = eval::TestLabels(ds->test);

    eval::TablePrinter table({"# models", "PR", "ROC"});
    for (int64_t k = 1; k <= max_models; ++k) {
      std::vector<std::vector<double>> prefix(per_model->begin(),
                                              per_model->begin() + k);
      const auto combined = core::MedianAcrossModels(prefix);
      table.AddRow({std::to_string(k),
                    eval::FormatDouble(metrics::PrAuc(combined, labels)),
                    eval::FormatDouble(metrics::RocAuc(combined, labels))});
    }
    std::cout << "--- " << ds_name << " ---\n"
              << table.ToString()
              << "(expected shape: PR/ROC trend upward with more models)\n\n";
  }
  return 0;
}

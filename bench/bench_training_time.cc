// Table 7: training-time comparison — RAE vs RAE-Ensemble and CAE vs
// CAE-Ensemble, with the ensemble/single ratios. The paper's shape:
//   (1) CAE trains faster than RAE (convolution parallelises; recurrence
//       cannot),
//   (2) RAE-Ensemble/RAE ratio ~ M (independent training),
//   (3) CAE-Ensemble/CAE ratio < M (parameter transfer + early stopping
//       make later basic models cheaper).

#include <iostream>

#include "baselines/rae.h"
#include "baselines/rae_ensemble.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/ensemble.h"
#include "data/registry.h"
#include "eval/table.h"

using namespace caee;

int main(int argc, char** argv) {
  const bench::Flags flags = bench::Flags::Parse(argc, argv);
  std::cout << "=== Table 7: training time (seconds; M=" << flags.models
            << " basic models; threads="
            << (flags.threads == 0 ? "hardware" : std::to_string(flags.threads))
            << ") ===\n\n";

  // A reduced dataset list keeps the default run under a couple of minutes;
  // pass --scale to push further.
  const std::vector<std::string> datasets = {"ECG", "SMAP"};

  eval::TablePrinter table({"Model", "ECG", "SMAP"});
  std::vector<std::vector<double>> times(4,
                                         std::vector<double>(datasets.size()));

  for (size_t di = 0; di < datasets.size(); ++di) {
    auto ds = data::MakeDataset(datasets[di], flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }

    // RAE (single).
    baselines::RaeConfig rae_cfg;
    rae_cfg.window = 16;
    rae_cfg.hidden = 32;  // paper-representative recurrent width
    rae_cfg.epochs = flags.epochs;
    rae_cfg.max_train_windows = 256;
    rae_cfg.seed = flags.seed;
    {
      baselines::Rae rae(rae_cfg);
      if (!rae.Fit(ds->train).ok()) return 1;
      times[0][di] = rae.train_seconds();
    }
    // RAE-Ensemble.
    {
      baselines::RaeEnsembleConfig cfg;
      cfg.rae = rae_cfg;
      cfg.num_models = flags.models;
      cfg.seed = flags.seed;
      baselines::RaeEnsemble ens(cfg);
      if (!ens.Fit(ds->train).ok()) return 1;
      times[1][di] = ens.train_seconds();
    }

    // CAE (single). Same epoch budget per model as the ensemble's members.
    // Both CAE rows train with early stopping and epoch headroom: that is
    // the mechanism Table 7 measures (transfer gives later basic models a
    // head start, so they stop earlier). The recurrent baselines train a
    // fixed epoch budget per model, as in Kieu et al.
    core::EnsembleConfig cae_cfg;
    cae_cfg.cae.embed_dim = 16;
    cae_cfg.cae.num_layers = 2;
    cae_cfg.window = 16;
    cae_cfg.num_models = 1;
    cae_cfg.epochs_per_model = 2 * flags.epochs;
    cae_cfg.early_stop_rel_tol = 0.15f;
    cae_cfg.diversity_enabled = false;
    cae_cfg.transfer_enabled = false;
    cae_cfg.max_train_windows = 256;
    cae_cfg.num_threads = flags.threads;
    cae_cfg.seed = flags.seed;
    {
      core::CaeEnsemble cae(cae_cfg);
      if (!cae.Fit(ds->train).ok()) return 1;
      times[2][di] = cae.train_stats().train_seconds;
    }
    // CAE-Ensemble with transfer + early stopping (the Table 7 efficiency
    // mechanism: later models start near their optimum and stop early).
    {
      core::EnsembleConfig cfg = cae_cfg;
      cfg.num_models = flags.models;
      cfg.diversity_enabled = true;
      cfg.transfer_enabled = true;
      cfg.beta = 0.7f;
      cfg.lambda = 0.5f;
      cfg.epochs_per_model = 2 * flags.epochs;
      cfg.early_stop_rel_tol = 0.15f;
      core::CaeEnsemble ens(cfg);
      if (!ens.Fit(ds->train).ok()) return 1;
      times[3][di] = ens.train_stats().train_seconds;
    }
  }

  const char* names[4] = {"RAE", "RAE-Ensemble", "CAE", "CAE-Ensemble"};
  for (int m = 0; m < 4; ++m) {
    std::vector<std::string> row = {names[m]};
    for (size_t di = 0; di < datasets.size(); ++di) {
      row.push_back(eval::FormatDouble(times[m][di], 2));
    }
    table.AddRow(row);
    if (m == 1 || m == 3) {
      std::vector<std::string> ratio_row = {std::string(names[m]) + "/" +
                                            names[m - 1] + " ratio"};
      for (size_t di = 0; di < datasets.size(); ++di) {
        ratio_row.push_back(eval::FormatDouble(
            times[m - 1][di] > 0 ? times[m][di] / times[m - 1][di] : 0.0, 2));
      }
      table.AddRow(ratio_row);
    }
  }
  std::cout << table.ToString()
            << "\n(expected shape: CAE < RAE per model; CAE-Ensemble ratio < "
               "RAE-Ensemble ratio, paper reports 5.9 vs 7.8 at M=8)\n";
  return 0;
}

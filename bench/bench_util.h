// Shared helpers for the table/figure reproduction binaries: minimal flag
// parsing and the default CPU-budget sizing. Every binary accepts:
//   --scale=<f>     dataset length scale (default sized for a 2-core laptop)
//   --models=<n>    ensemble size M
//   --epochs=<n>    epochs per basic model
//   --threads=<n>   parallel engine workers (0 = hardware, 1 = sequential)
//   --seed=<n>
// plus bench-specific flags documented in each main().

#ifndef CAEE_BENCH_BENCH_UTIL_H_
#define CAEE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "eval/detector.h"

namespace caee {
namespace bench {

struct Flags {
  double scale = 0.25;
  int64_t models = 4;
  int64_t epochs = 4;
  int64_t threads = 0;  // parallel engine workers (0 = hardware)
  uint64_t seed = 7;
  double lambda = -1.0;  // < 0: use the per-dataset Table 2 value
  double beta = -1.0;    // < 0: use the per-dataset Table 2 value
  std::vector<std::string> datasets;   // empty: bench default
  std::vector<std::string> detectors;  // empty: bench default

  static Flags Parse(int argc, char** argv) {
    Flags f;
    auto split = [](const std::string& csv) {
      std::vector<std::string> out;
      size_t begin = 0;
      while (begin <= csv.size()) {
        const size_t comma = csv.find(',', begin);
        const size_t end = comma == std::string::npos ? csv.size() : comma;
        if (end > begin) out.push_back(csv.substr(begin, end - begin));
        begin = end + 1;
      }
      return out;
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&arg](const std::string& prefix) {
        return arg.substr(prefix.size());
      };
      if (arg.rfind("--scale=", 0) == 0) {
        f.scale = std::atof(value_of("--scale=").c_str());
      } else if (arg.rfind("--models=", 0) == 0) {
        f.models = std::atoll(value_of("--models=").c_str());
      } else if (arg.rfind("--epochs=", 0) == 0) {
        f.epochs = std::atoll(value_of("--epochs=").c_str());
      } else if (arg.rfind("--threads=", 0) == 0) {
        f.threads = std::atoll(value_of("--threads=").c_str());
      } else if (arg.rfind("--seed=", 0) == 0) {
        f.seed = std::strtoull(value_of("--seed=").c_str(), nullptr, 10);
      } else if (arg.rfind("--lambda=", 0) == 0) {
        f.lambda = std::atof(value_of("--lambda=").c_str());
      } else if (arg.rfind("--beta=", 0) == 0) {
        f.beta = std::atof(value_of("--beta=").c_str());
      } else if (arg.rfind("--datasets=", 0) == 0) {
        f.datasets = split(value_of("--datasets="));
      } else if (arg.rfind("--detectors=", 0) == 0) {
        f.detectors = split(value_of("--detectors="));
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --scale=F --models=N --epochs=N --threads=N "
                     "--seed=N --lambda=F --beta=F --datasets=A,B "
                     "--detectors=A,B\n";
        std::exit(0);
      }
    }
    return f;
  }
};

/// \brief Detector sizing derived from the common flags (CPU-budget default).
inline eval::SuiteConfig MakeSuite(const Flags& f) {
  eval::SuiteConfig s;
  s.window = 16;
  s.embed_dim = 0;  // auto-size from dims
  s.cae_layers = 2;
  s.num_models = f.models;
  s.epochs_per_model = f.epochs;
  s.rnn_hidden = 16;
  s.rnn_epochs = 2;
  s.ae_epochs = 8;
  s.batch_size = 32;  // more optimiser steps per epoch at CPU scale
  s.lr = 2e-3f;
  s.max_train_windows = 256;
  s.num_threads = f.threads;
  s.seed = f.seed;
  return s;
}

}  // namespace bench
}  // namespace caee

#endif  // CAEE_BENCH_BENCH_UTIL_H_

// Tables 3 & 4: accuracy (Precision / Recall / F1 at the best-F1 threshold,
// PR-AUC, ROC-AUC) for all 12 detectors on the five dataset profiles, plus
// the Overall averages. Absolute values differ from the paper (synthetic
// data, miniature model sizes); the comparison shape — neural > classic on
// average, CAE-Ensemble strongest overall — is the reproduction target.

#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

int main(int argc, char** argv) {
  const bench::Flags flags = bench::Flags::Parse(argc, argv);
  const std::vector<std::string> datasets =
      flags.datasets.empty() ? data::ListDatasets() : flags.datasets;
  const std::vector<std::string> detectors =
      flags.detectors.empty() ? eval::AllDetectorNames() : flags.detectors;

  std::cout << "=== Tables 3-4: accuracy on " << datasets.size()
            << " datasets (scale=" << flags.scale << ", M=" << flags.models
            << ", epochs/model=" << flags.epochs << ") ===\n\n";

  std::map<std::string, std::vector<metrics::AccuracyReport>> overall;
  Stopwatch total_timer;

  for (const auto& ds_name : datasets) {
    auto ds = data::MakeDataset(ds_name, flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << "dataset " << ds_name << ": " << ds.status() << "\n";
      return 1;
    }
    eval::SuiteConfig suite = bench::MakeSuite(flags);
    // Per-dataset hyperparameters from the paper's Table 2 (β, λ); the
    // window stays at the suite's CPU-budget value. Flags override.
    const auto paper = eval::Table2Hyperparameters(ds_name);
    suite.beta = flags.beta >= 0 ? static_cast<float>(flags.beta) : paper.beta;
    // The paper's Table 2 λ values are on a sum-scaled loss; with the
    // MSE-normalised J/K used here the stable equivalent band is (0, 1).
    suite.lambda = flags.lambda >= 0 ? static_cast<float>(flags.lambda) : 0.5f;

    eval::TablePrinter table(
        {"Model", "Precision", "Recall", "F1", "PR", "ROC"});
    for (const auto& name : detectors) {
      auto detector = eval::MakeDetector(name, suite);
      if (!detector.ok()) {
        std::cerr << detector.status() << "\n";
        return 1;
      }
      auto result = eval::RunDetector(detector->get(), *ds);
      if (!result.ok()) {
        std::cerr << name << " on " << ds_name << ": " << result.status()
                  << "\n";
        return 1;
      }
      const auto& r = result->report;
      table.AddRow({name, eval::FormatDouble(r.precision),
                    eval::FormatDouble(r.recall), eval::FormatDouble(r.f1),
                    eval::FormatDouble(r.pr_auc),
                    eval::FormatDouble(r.roc_auc)});
      overall[name].push_back(r);
    }
    std::cout << "--- " << ds_name
              << " (dims=" << ds->test.dims()
              << ", test length=" << ds->test.length() << ", outlier ratio="
              << eval::FormatDouble(ds->test.OutlierRatio(), 4) << ") ---\n"
              << table.ToString() << "\n";
  }

  // Overall block (paper Table 4, right).
  eval::TablePrinter table({"Model", "Precision", "Recall", "F1", "PR", "ROC"});
  for (const auto& name : detectors) {
    const auto avg = metrics::Average(overall[name]);
    table.AddRow({name, eval::FormatDouble(avg.precision),
                  eval::FormatDouble(avg.recall), eval::FormatDouble(avg.f1),
                  eval::FormatDouble(avg.pr_auc),
                  eval::FormatDouble(avg.roc_auc)});
  }
  std::cout << "--- Overall (average over datasets) ---\n"
            << table.ToString() << "\n";
  std::cout << "total wall time: " << eval::FormatDouble(
                   total_timer.ElapsedSeconds(), 1)
            << "s\n";
  return 0;
}

// Figure 17: effect of the convolution kernel size (3, 5, 7, 9) on ECG and
// SMAP. The paper's observation: accuracy is insensitive to the kernel size.

#include <iostream>

#include "bench_util.h"
#include "core/ensemble.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

int main(int argc, char** argv) {
  const bench::Flags flags = bench::Flags::Parse(argc, argv);
  std::cout << "=== Figure 17: effect of the kernel size ===\n\n";

  for (const std::string ds_name : {"ECG", "SMAP"}) {
    auto ds = data::MakeDataset(ds_name, flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }
    eval::TablePrinter table(
        {"Kernel", "Precision", "Recall", "F1", "PR", "ROC"});
    for (int64_t kernel : {3, 5, 7, 9}) {
      core::EnsembleConfig cfg;
      cfg.cae.embed_dim = 0;  // auto-size
      cfg.cae.num_layers = 2;
      cfg.cae.kernel = kernel;
      cfg.window = 16;
      cfg.num_models = flags.models;
      cfg.epochs_per_model = flags.epochs;
      cfg.max_train_windows = 256;
      if (flags.lambda >= 0) cfg.lambda = static_cast<float>(flags.lambda);
      if (flags.beta >= 0) cfg.beta = static_cast<float>(flags.beta);
      cfg.seed = flags.seed;
      core::CaeEnsemble ensemble(cfg);
      if (!ensemble.Fit(ds->train).ok()) return 1;
      auto scores = ensemble.Score(ds->test);
      if (!scores.ok()) {
        std::cerr << scores.status() << "\n";
        return 1;
      }
      const auto r = metrics::Evaluate(*scores, eval::TestLabels(ds->test));
      table.AddRow({std::to_string(kernel), eval::FormatDouble(r.precision),
                    eval::FormatDouble(r.recall), eval::FormatDouble(r.f1),
                    eval::FormatDouble(r.pr_auc),
                    eval::FormatDouble(r.roc_auc)});
    }
    std::cout << "--- " << ds_name << " ---\n"
              << table.ToString()
              << "(expected shape: metrics roughly flat across kernels)\n\n";
  }
  return 0;
}

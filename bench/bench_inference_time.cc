// Table 8: online inference time per window for CAE and CAE-Ensemble.
// google-benchmark measures the streaming path (StreamingScorer::Push on a
// warm buffer), which is exactly the paper's "new observation arrives ->
// score it" setting. Expected shape: per-window latency in the tens-to-
// hundreds of microseconds range at these model sizes, with CAE-Ensemble
// close to M x CAE on a CPU (the paper's GPUs run basic models in parallel,
// so their gap is smaller).

#include <map>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "core/ensemble.h"
#include "core/streaming.h"
#include "data/registry.h"

namespace caee {
namespace {

core::EnsembleConfig BenchConfig(int64_t num_models, int64_t num_threads) {
  core::EnsembleConfig cfg;
  cfg.cae.embed_dim = 0;  // auto-size
  cfg.cae.num_layers = 2;
  cfg.window = 16;
  cfg.num_models = num_models;
  cfg.epochs_per_model = 1;
  cfg.max_train_windows = 128;
  cfg.diversity_enabled = num_models > 1;
  cfg.transfer_enabled = num_models > 1;
  cfg.num_threads = num_threads;
  cfg.seed = 7;
  return cfg;
}

struct Fixture {
  Fixture(const std::string& dataset, int64_t num_models)
      : ds(data::MakeDataset(dataset, 0.15, 7).ValueOrDie()),
        ensemble(BenchConfig(num_models, /*num_threads=*/0)) {
    CAEE_CHECK(ensemble.Fit(ds.train).ok());
  }
  ts::Dataset ds;
  core::CaeEnsemble ensemble;
};

Fixture* GetFixture(const std::string& dataset, int64_t num_models) {
  // One fixture per (dataset, M); trained lazily and reused across runs.
  // Thread-count variants share it: trained weights are thread-count
  // independent, so only the scoring-time engine width changes per bench.
  static std::map<std::string, std::unique_ptr<Fixture>>* cache =
      new std::map<std::string, std::unique_ptr<Fixture>>();
  const std::string key = dataset + "/" + std::to_string(num_models);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::make_unique<Fixture>(dataset, num_models))
             .first;
  }
  return it->second.get();
}

void BM_InferencePerWindow(benchmark::State& state,
                           const std::string& dataset, int64_t num_models,
                           int64_t num_threads = 0) {
  Fixture* fixture = GetFixture(dataset, num_models);
  fixture->ensemble.set_num_threads(num_threads);
  core::StreamingScorer scorer(&fixture->ensemble);
  const ts::TimeSeries& test = fixture->ds.test;
  // Warm up the buffer.
  int64_t t = 0;
  const int64_t w = fixture->ensemble.config().window;
  for (; t < w; ++t) {
    std::vector<float> obs(test.row(t), test.row(t) + test.dims());
    CAEE_CHECK(scorer.Push(obs).ok());
  }
  for (auto _ : state) {
    std::vector<float> obs(test.row(t), test.row(t) + test.dims());
    auto result = scorer.Push(obs);
    benchmark::DoNotOptimize(result);
    t = (t + 1) % test.length();
    if (t == 0) t = w;
  }
  state.SetLabel(dataset + (num_models > 1 ? " CAE-Ensemble" : " CAE") +
                 (num_threads > 0
                      ? " threads=" + std::to_string(num_threads)
                      : ""));
}

}  // namespace

// Table 8 columns: one entry per dataset, CAE (M=1) and CAE-Ensemble (M=4).
BENCHMARK_CAPTURE(BM_InferencePerWindow, ecg_cae, "ECG", 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_InferencePerWindow, ecg_ens, "ECG", 4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_InferencePerWindow, smap_cae, "SMAP", 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_InferencePerWindow, smap_ens, "SMAP", 4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_InferencePerWindow, smd_cae, "SMD", 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_InferencePerWindow, smd_ens, "SMD", 4)
    ->Unit(benchmark::kMicrosecond);

// Parallel-engine scaling on the ensemble scoring path: the M basic models'
// forward passes fan out over the thread pool (sequential at threads=1).
BENCHMARK_CAPTURE(BM_InferencePerWindow, ecg_ens_t1, "ECG", 4, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_InferencePerWindow, ecg_ens_t4, "ECG", 4, 4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_InferencePerWindow, smd_ens_t1, "SMD", 4, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_InferencePerWindow, smd_ens_t4, "SMD", 4, 4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace caee

BENCHMARK_MAIN();

// Ablation of the interpretation / stability choices DESIGN.md documents
// (beyond the paper's own Table 5 ablation):
//   - attention placement: none vs last-layer (Fig. 3) vs per-layer (Eq. 7)
//   - embedding activation: linear random features vs ReLU random features
//   - diversity cap ratio: unguarded Eq. 13 vs capped
//   - denoising training: off vs on

#include <iostream>

#include "bench_util.h"
#include "core/ensemble.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

namespace {

struct Variant {
  std::string name;
  core::EnsembleConfig config;
};

std::vector<Variant> MakeVariants(const core::EnsembleConfig& base) {
  std::vector<Variant> v;
  v.push_back({"baseline (all defaults)", base});
  {
    core::EnsembleConfig c = base;
    c.cae.attention = core::AttentionMode::kNone;
    v.push_back({"attention: none", c});
  }
  {
    core::EnsembleConfig c = base;
    c.cae.attention = core::AttentionMode::kLastLayer;
    v.push_back({"attention: last layer only", c});
  }
  {
    core::EnsembleConfig c = base;
    c.embed_obs_act = nn::Activation::kRelu;
    c.embed_pos_act = nn::Activation::kRelu;
    v.push_back({"embedding: ReLU random features", c});
  }
  {
    core::EnsembleConfig c = base;
    c.diversity_cap_ratio = 0.0f;  // raw Eq. 13
    v.push_back({"diversity: uncapped Eq. 13", c});
  }
  {
    core::EnsembleConfig c = base;
    c.denoise_std = 0.0f;
    v.push_back({"denoising: off", c});
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::Flags::Parse(argc, argv);
  std::cout << "=== Design-choice ablation (DESIGN.md interpretation "
               "choices; not a paper table) ===\n\n";

  for (const std::string ds_name : {"ECG", "SMAP"}) {
    auto ds = data::MakeDataset(ds_name, flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }
    core::EnsembleConfig base;
    base.cae.embed_dim = 0;  // auto-size
    base.cae.num_layers = 2;
    base.window = 16;
    base.num_models = flags.models;
    base.epochs_per_model = flags.epochs;
    base.batch_size = 32;
    base.lr = 2e-3f;
    base.max_train_windows = 256;
    base.lambda = flags.lambda >= 0 ? static_cast<float>(flags.lambda) : 0.5f;
    base.beta = flags.beta >= 0 ? static_cast<float>(flags.beta) : 0.5f;
    base.seed = flags.seed;

    eval::TablePrinter table({"Variant", "F1", "PR", "ROC"});
    for (const auto& variant : MakeVariants(base)) {
      core::CaeEnsemble ensemble(variant.config);
      if (!ensemble.Fit(ds->train).ok()) {
        std::cerr << variant.name << ": fit failed\n";
        return 1;
      }
      auto scores = ensemble.Score(ds->test);
      if (!scores.ok()) {
        std::cerr << variant.name << ": " << scores.status() << "\n";
        return 1;
      }
      const auto r = metrics::Evaluate(*scores, eval::TestLabels(ds->test));
      table.AddRow({variant.name, eval::FormatDouble(r.f1),
                    eval::FormatDouble(r.pr_auc),
                    eval::FormatDouble(r.roc_auc)});
    }
    std::cout << "--- " << ds_name << " ---\n" << table.ToString() << "\n";
  }
  return 0;
}

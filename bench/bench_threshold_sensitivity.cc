// Figure 13: Precision@K / Recall@K / F1@K as the top-K% threshold sweeps
// through the score distribution, on ECG and SMAP. The paper's observation:
// the curves converge near the dataset's true outlier ratio, so the ratio is
// a good threshold when known.

#include <iostream>

#include "bench_util.h"
#include "core/ensemble.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

int main(int argc, char** argv) {
  const bench::Flags flags = bench::Flags::Parse(argc, argv);
  std::cout << "=== Figure 13: top-K% threshold sensitivity ===\n\n";

  for (const std::string ds_name : {"ECG", "SMAP"}) {
    auto ds = data::MakeDataset(ds_name, flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }
    core::EnsembleConfig cfg;
    cfg.cae.embed_dim = 0;  // auto-size
    cfg.cae.num_layers = 2;
    cfg.window = 16;
    cfg.num_models = flags.models;
    cfg.epochs_per_model = flags.epochs;
    cfg.max_train_windows = 256;
    if (flags.lambda >= 0) cfg.lambda = static_cast<float>(flags.lambda);
    if (flags.beta >= 0) cfg.beta = static_cast<float>(flags.beta);
    cfg.seed = flags.seed;
    core::CaeEnsemble ensemble(cfg);
    if (!ensemble.Fit(ds->train).ok()) return 1;
    auto scores = ensemble.Score(ds->test);
    if (!scores.ok()) {
      std::cerr << scores.status() << "\n";
      return 1;
    }
    const auto labels = eval::TestLabels(ds->test);

    eval::TablePrinter table({"K%", "Precision@K", "Recall@K", "F1@K"});
    const double ratio_percent = ds->test.OutlierRatio() * 100.0;
    for (double k : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 15.0,
                     20.0}) {
      const auto m = metrics::AtTopK(*scores, labels, k);
      std::string k_label = eval::FormatDouble(k, 0);
      table.AddRow({k_label, eval::FormatDouble(m.precision),
                    eval::FormatDouble(m.recall), eval::FormatDouble(m.f1)});
    }
    std::cout << "--- " << ds_name << " (true outlier ratio = "
              << eval::FormatDouble(ratio_percent, 1) << "%) ---\n"
              << table.ToString()
              << "(expected shape: F1@K peaks near the true ratio)\n\n";
  }
  return 0;
}

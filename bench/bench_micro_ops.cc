// Substrate microbenchmarks: the primitives whose relative cost underpins
// the paper's efficiency argument, now in two roles:
//
//  1. google-benchmark registrations (default mode) for interactive use —
//     optimized kernels vs the kernels::reference::* naive loops at
//     CAE-representative shapes (B=64, W=16..64, C=32..128, K=3).
//  2. `--caee_json=PATH`: a self-timed harness that writes a
//     machine-readable BENCH_*.json entry list {op, shape, threads, impl,
//     ns_per_iter, checksum} and prints a naive-vs-optimized speedup table.
//     CI runs this and fails the build if any kernel regresses >2x against
//     the committed baseline (scripts/check_bench_regression.py).
//
// The conv-vs-LSTM pair (the architectural story of Tables 7-8) stays: one
// whole window through a conv layer vs W sequential LSTM steps.

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "kernels/reference.h"
#include "nn/conv1d.h"
#include "nn/rnn.h"
#include "tensor/tensor_ops.h"

namespace caee {
namespace {

// ---------------------------------------------------------------------------
// google-benchmark registrations (interactive mode).
// ---------------------------------------------------------------------------

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulNaive(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  Tensor c = Tensor::Uninitialized({n, n});
  for (auto _ : state) {
    kernels::reference::MatMul(a.data(), n, false, b.data(), n, false,
                               c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulNaive)->Arg(64)->Arg(128);

void BM_Conv1dForwardWindow(benchmark::State& state) {
  const int64_t channels = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Randn({1, 16, channels}, &rng);
  Tensor w = Tensor::Randn({channels, 3, channels}, &rng);
  Tensor bias = Tensor::Randn({channels}, &rng);
  for (auto _ : state) {
    Tensor y = ops::Conv1d(x, w, bias, 1, 1);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv1dForwardWindow)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv1dBatchedForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::Randn({batch, 16, 32}, &rng);
  Tensor w = Tensor::Randn({32, 3, 32}, &rng);
  Tensor bias = Tensor::Randn({32}, &rng);
  for (auto _ : state) {
    Tensor y = ops::Conv1d(x, w, bias, 1, 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * 16);
}
BENCHMARK(BM_Conv1dBatchedForward)->Arg(1)->Arg(16)->Arg(64);

void BM_Conv1dBatchedForwardNaive(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::Randn({batch, 16, 32}, &rng);
  Tensor w = Tensor::Randn({32, 3, 32}, &rng);
  Tensor bias = Tensor::Randn({32}, &rng);
  Tensor y = Tensor::Uninitialized({batch, 16, 32});
  for (auto _ : state) {
    kernels::reference::Conv1dForward(x.data(), w.data(), bias.data(),
                                      y.data(), batch, 16, 32, 32, 3, 1, 16);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * 16);
}
BENCHMARK(BM_Conv1dBatchedForwardNaive)->Arg(16)->Arg(64);

// One whole 16-step window through a conv layer vs 16 sequential LSTM steps
// at matched width — the parallelism argument in one number pair.
void BM_WindowViaConv(benchmark::State& state) {
  Rng rng(4);
  nn::Conv1dLayer conv(32, 32, 3, nn::Padding::kSame, &rng);
  Tensor x = Tensor::Randn({1, 16, 32}, &rng);
  for (auto _ : state) {
    ag::Var y = conv.Forward(ag::Constant(x));
    benchmark::DoNotOptimize(y->value().data());
  }
}
BENCHMARK(BM_WindowViaConv);

void BM_WindowViaLstm(benchmark::State& state) {
  Rng rng(5);
  nn::LstmCell cell(32, 32, &rng);
  Tensor x = Tensor::Randn({1, 16, 32}, &rng);
  const auto steps = nn::SplitTimeConstant(x);
  for (auto _ : state) {
    nn::LstmState s = cell.InitialState(1);
    for (const auto& step : steps) s = cell.Forward(step, s);
    benchmark::DoNotOptimize(s.h->value().data());
  }
}
BENCHMARK(BM_WindowViaLstm);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(6);
  Tensor x = Tensor::Randn({64, 16, 16}, &rng);
  for (auto _ : state) {
    Tensor y = ops::SoftmaxLastDim(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxLastDim);

void BM_ParallelForScaling(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  SetGlobalParallelism(threads);
  std::vector<double> sink(1 << 16);
  for (auto _ : state) {
    ParallelFor(sink.size(), [&sink](size_t i) {
      sink[i] = std::sqrt(static_cast<double>(i) + 1.0);
    });
    benchmark::DoNotOptimize(sink.data());
  }
  SetGlobalParallelism(0);
}
BENCHMARK(BM_ParallelForScaling)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------------
// --caee_json mode: self-timed entries with checksums.
// ---------------------------------------------------------------------------

struct JsonEntry {
  std::string op;
  std::string shape;
  int threads;
  std::string impl;  // "naive" | "opt"
  double ns_per_iter;
  double checksum;
};

// Defeats dead-code elimination of the timed kernels at negligible cost:
// every timed call feeds one element of its output here.
volatile double g_sink = 0.0;

// Times fn() until ~0.3 s of samples accumulate (at least 3 iterations) and
// returns ns/iter. fn returns a checksum; the final value is recorded in
// the entry (so numeric drift shows in the JSON diff) but the checksum
// reduction itself runs OUTSIDE the timed region — each timed call only
// pushes one output element into g_sink.
JsonEntry TimeOp(const std::string& op, const std::string& shape, int threads,
                 const std::string& impl, const std::function<void()>& run,
                 const std::function<double()>& checksum) {
  using Clock = std::chrono::steady_clock;
  run();  // warmup
  int64_t iters = 0;
  double elapsed_ns = 0.0;
  while (elapsed_ns < 3e8 || iters < 3) {
    const auto t0 = Clock::now();
    run();
    const auto t1 = Clock::now();
    elapsed_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    ++iters;
    if (iters >= 1000000) break;
  }
  JsonEntry e;
  e.op = op;
  e.shape = shape;
  e.threads = threads;
  e.impl = impl;
  e.ns_per_iter = elapsed_ns / static_cast<double>(iters);
  e.checksum = checksum();
  std::fprintf(stderr, "  %-18s %-22s t=%d %-5s  %12.0f ns/iter\n", op.c_str(),
               shape.c_str(), threads, impl.c_str(), e.ns_per_iter);
  return e;
}

double SumOf(const Tensor& t) { return t.Sum(); }

int RunJsonMode(const char* path) {
  std::vector<JsonEntry> entries;
  std::fprintf(stderr, "caee micro-op bench (json mode)\n");

  // CAE-representative shapes: batch 64, windows 16..64, channels 32..128,
  // kernel 3 with same padding — the Conv1d/MatMul population the ensemble's
  // training and scoring wall-clock is made of.
  struct ConvCfg {
    int64_t b, w, c, k;
  };
  const ConvCfg conv_cfgs[] = {{64, 16, 32, 3}, {64, 32, 64, 3},
                               {64, 64, 128, 3}};
  for (const ConvCfg& cfg : conv_cfgs) {
    Rng rng(11);
    Tensor x = Tensor::Randn({cfg.b, cfg.w, cfg.c}, &rng);
    Tensor w = Tensor::Randn({cfg.c, cfg.k, cfg.c}, &rng, 0.1f);
    Tensor bias = Tensor::Randn({cfg.c}, &rng);
    char shape[64];
    std::snprintf(shape, sizeof(shape),
                  "B%" PRId64 "_W%" PRId64 "_C%" PRId64 "_K%" PRId64, cfg.b,
                  cfg.w, cfg.c, cfg.k);
    SetGlobalParallelism(1);
    Tensor naive_y = Tensor::Uninitialized({cfg.b, cfg.w, cfg.c});
    auto naive_fwd = [&] {
      kernels::reference::Conv1dForward(x.data(), w.data(), bias.data(),
                                        naive_y.data(), cfg.b, cfg.w, cfg.c,
                                        cfg.c, cfg.k, 1, cfg.w);
      g_sink += naive_y.data()[0];
    };
    entries.push_back(TimeOp("conv1d_fwd", shape, 1, "naive", naive_fwd,
                             [&] { return SumOf(naive_y); }));
    entries.push_back(TimeOp(
        "conv1d_fwd", shape, 1, "opt",
        [&] { g_sink += ops::Conv1d(x, w, bias, 1, 1).data()[0]; },
        [&] { return SumOf(ops::Conv1d(x, w, bias, 1, 1)); }));

    Tensor dy = Tensor::Randn({cfg.b, cfg.w, cfg.c}, &rng, 0.1f);
    Tensor naive_dx(Shape{cfg.b, cfg.w, cfg.c});
    auto naive_bwd_in = [&] {
      naive_dx.Zero();
      kernels::reference::Conv1dBackwardInput(dy.data(), w.data(),
                                              naive_dx.data(), cfg.b, cfg.w,
                                              cfg.c, cfg.c, cfg.k, 1, cfg.w);
      g_sink += naive_dx.data()[0];
    };
    entries.push_back(TimeOp("conv1d_bwd_input", shape, 1, "naive",
                             naive_bwd_in, [&] { return SumOf(naive_dx); }));
    entries.push_back(TimeOp(
        "conv1d_bwd_input", shape, 1, "opt",
        [&] { g_sink += ops::Conv1dBackwardInput(dy, w, cfg.w, 1).data()[0]; },
        [&] { return SumOf(ops::Conv1dBackwardInput(dy, w, cfg.w, 1)); }));

    Tensor naive_dw(Shape{cfg.c, cfg.k, cfg.c});
    auto naive_bwd_w = [&] {
      naive_dw.Zero();
      kernels::reference::Conv1dBackwardWeight(dy.data(), x.data(),
                                               naive_dw.data(), cfg.b, cfg.w,
                                               cfg.c, cfg.c, cfg.k, 1, cfg.w);
      g_sink += naive_dw.data()[0];
    };
    entries.push_back(TimeOp("conv1d_bwd_weight", shape, 1, "naive",
                             naive_bwd_w, [&] { return SumOf(naive_dw); }));
    entries.push_back(TimeOp(
        "conv1d_bwd_weight", shape, 1, "opt",
        [&] { g_sink += ops::Conv1dBackwardWeight(dy, x, cfg.k, 1).data()[0]; },
        [&] { return SumOf(ops::Conv1dBackwardWeight(dy, x, cfg.k, 1)); }));
  }

  for (int64_t n : {64, 128}) {
    Rng rng(12);
    Tensor a = Tensor::Randn({n, n}, &rng);
    Tensor b = Tensor::Randn({n, n}, &rng);
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%" PRId64 "x%" PRId64 "x%" PRId64, n,
                  n, n);
    SetGlobalParallelism(1);
    Tensor naive_c = Tensor::Uninitialized({n, n});
    auto naive_mm = [&] {
      kernels::reference::MatMul(a.data(), n, false, b.data(), n, false,
                                 naive_c.data(), n, n, n);
      g_sink += naive_c.data()[0];
    };
    entries.push_back(TimeOp("matmul", shape, 1, "naive", naive_mm,
                             [&] { return SumOf(naive_c); }));
    entries.push_back(TimeOp(
        "matmul", shape, 1, "opt",
        [&] { g_sink += ops::MatMul(a, b).data()[0]; },
        [&] { return SumOf(ops::MatMul(a, b)); }));
  }

  // Multi-thread rows for the biggest shapes (meaningful on multicore
  // runners; equal to t=1 on single-core boxes, which is itself a signal
  // that the dispatch overhead is bounded).
  {
    Rng rng(13);
    Tensor x = Tensor::Randn({64, 64, 128}, &rng);
    Tensor w = Tensor::Randn({128, 3, 128}, &rng, 0.1f);
    Tensor bias = Tensor::Randn({128}, &rng);
    SetGlobalParallelism(4);
    entries.push_back(TimeOp(
        "conv1d_fwd", "B64_W64_C128_K3", 4, "opt",
        [&] { g_sink += ops::Conv1d(x, w, bias, 1, 1).data()[0]; },
        [&] { return SumOf(ops::Conv1d(x, w, bias, 1, 1)); }));
    Tensor a = Tensor::Randn({128, 128}, &rng);
    Tensor b = Tensor::Randn({128, 128}, &rng);
    entries.push_back(TimeOp(
        "matmul", "128x128x128", 4, "opt",
        [&] { g_sink += ops::MatMul(a, b).data()[0]; },
        [&] { return SumOf(ops::MatMul(a, b)); }));
    SetGlobalParallelism(1);
  }

  // Elementwise / reduction kernels (optimized only; these had no naive
  // twin worth keeping).
  {
    Rng rng(14);
    Tensor x = Tensor::Randn({64, 64, 128}, &rng);
    Tensor y = Tensor::Randn({64, 64, 128}, &rng);
    entries.push_back(TimeOp(
        "sigmoid", "B64_W64_C128", 1, "opt",
        [&] { g_sink += ops::Sigmoid(x).data()[0]; },
        [&] { return SumOf(ops::Sigmoid(x)); }));
    entries.push_back(TimeOp(
        "add", "B64_W64_C128", 1, "opt",
        [&] { g_sink += ops::Add(x, y).data()[0]; },
        [&] { return SumOf(ops::Add(x, y)); }));
    Tensor acc(x.shape());
    entries.push_back(TimeOp(
        "axpy", "B64_W64_C128", 1, "opt",
        [&] {
          ops::AxpyInPlace(0.0f, x, &acc);  // alpha=0 keeps acc stable
          g_sink += acc.data()[0];
        },
        [&] { return SumOf(acc); }));
    auto sq_err_sum = [&] {
      const std::vector<double> e = ops::SquaredErrorPerPosition(x, y);
      double s = 0.0;
      for (double v : e) s += v;
      return s;
    };
    entries.push_back(TimeOp(
        "sq_err", "B64_W64_C128", 1, "opt",
        [&] { g_sink += ops::SquaredErrorPerPosition(x, y)[0]; }, sq_err_sum));
    Tensor sm = Tensor::Randn({64, 16, 16}, &rng);
    entries.push_back(TimeOp(
        "softmax", "64x16x16", 1, "opt",
        [&] { g_sink += ops::SoftmaxLastDim(sm).data()[0]; },
        [&] { return SumOf(ops::SoftmaxLastDim(sm)); }));
  }
  SetGlobalParallelism(0);

  // Speedup table (naive vs opt at matching op/shape/threads).
  std::fprintf(stderr, "\n  %-18s %-22s %10s\n", "op", "shape", "speedup");
  for (const JsonEntry& opt : entries) {
    if (opt.impl != "opt") continue;
    for (const JsonEntry& naive : entries) {
      if (naive.impl == "naive" && naive.op == opt.op &&
          naive.shape == opt.shape && naive.threads == opt.threads) {
        std::fprintf(stderr, "  %-18s %-22s %9.2fx\n", opt.op.c_str(),
                     opt.shape.c_str(), naive.ns_per_iter / opt.ns_per_iter);
      }
    }
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_micro_ops\",\n  \"schema\": 1,\n"
                  "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const JsonEntry& e = entries[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                 "\"impl\": \"%s\", \"ns_per_iter\": %.1f, "
                 "\"checksum\": %.17g}%s\n",
                 e.op.c_str(), e.shape.c_str(), e.threads, e.impl.c_str(),
                 e.ns_per_iter, e.checksum,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "\nwrote %zu entries to %s\n", entries.size(), path);
  return 0;
}

}  // namespace
}  // namespace caee

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--caee_json=", 12) == 0) {
      return caee::RunJsonMode(argv[i] + 12);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

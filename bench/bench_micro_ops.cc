#include <cmath>
// Substrate microbenchmarks: the primitives whose relative cost underpins
// the paper's efficiency argument. Conv1d processes a whole window per call
// (parallel across timestamps); the LSTM must iterate its steps serially —
// the per-window cost gap between "conv1d over w" and "w x lstm_step" is the
// architectural story of Tables 7-8.

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "nn/conv1d.h"
#include "nn/rnn.h"
#include "tensor/tensor_ops.h"

namespace caee {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv1dForwardWindow(benchmark::State& state) {
  const int64_t channels = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Randn({1, 16, channels}, &rng);
  Tensor w = Tensor::Randn({channels, 3, channels}, &rng);
  Tensor bias = Tensor::Randn({channels}, &rng);
  for (auto _ : state) {
    Tensor y = ops::Conv1d(x, w, bias, 1, 1);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv1dForwardWindow)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv1dBatchedForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::Randn({batch, 16, 32}, &rng);
  Tensor w = Tensor::Randn({32, 3, 32}, &rng);
  Tensor bias = Tensor::Randn({32}, &rng);
  for (auto _ : state) {
    Tensor y = ops::Conv1d(x, w, bias, 1, 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * 16);
}
BENCHMARK(BM_Conv1dBatchedForward)->Arg(1)->Arg(16)->Arg(64);

// One whole 16-step window through a conv layer vs 16 sequential LSTM steps
// at matched width — the parallelism argument in one number pair.
void BM_WindowViaConv(benchmark::State& state) {
  Rng rng(4);
  nn::Conv1dLayer conv(32, 32, 3, nn::Padding::kSame, &rng);
  Tensor x = Tensor::Randn({1, 16, 32}, &rng);
  for (auto _ : state) {
    ag::Var y = conv.Forward(ag::Constant(x));
    benchmark::DoNotOptimize(y->value().data());
  }
}
BENCHMARK(BM_WindowViaConv);

void BM_WindowViaLstm(benchmark::State& state) {
  Rng rng(5);
  nn::LstmCell cell(32, 32, &rng);
  Tensor x = Tensor::Randn({1, 16, 32}, &rng);
  const auto steps = nn::SplitTimeConstant(x);
  for (auto _ : state) {
    nn::LstmState s = cell.InitialState(1);
    for (const auto& step : steps) s = cell.Forward(step, s);
    benchmark::DoNotOptimize(s.h->value().data());
  }
}
BENCHMARK(BM_WindowViaLstm);

void BM_SoftmaxLastDim(benchmark::State& state) {
  Rng rng(6);
  Tensor x = Tensor::Randn({64, 16, 16}, &rng);
  for (auto _ : state) {
    Tensor y = ops::SoftmaxLastDim(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxLastDim);

void BM_ParallelForScaling(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  SetGlobalParallelism(threads);
  std::vector<double> sink(1 << 16);
  for (auto _ : state) {
    ParallelFor(sink.size(), [&sink](size_t i) {
      sink[i] = std::sqrt(static_cast<double>(i) + 1.0);
    });
    benchmark::DoNotOptimize(sink.data());
  }
  SetGlobalParallelism(0);
}
BENCHMARK(BM_ParallelForScaling)->Arg(1)->Arg(2);

}  // namespace
}  // namespace caee

BENCHMARK_MAIN();

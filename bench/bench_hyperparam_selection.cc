// Figures 14 & 15: unsupervised hyperparameter selection. Runs Algorithm 2
// on ECG and SMAP, then reports each sweep ordered by validation
// reconstruction error, annotated with the supervised PR/ROC each candidate
// would have achieved on the labelled test set (computed here only for the
// figure — the selection itself never sees labels). The paper's observation:
// the median-error pick is not optimal but is robustly "good enough", and
// usually beats the minimum-error pick.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "core/ensemble.h"
#include "core/hyperparameter.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "eval/table.h"

using namespace caee;

namespace {

// Supervised quality of a candidate triple, for annotation only.
metrics::AccuracyReport AnnotateWithLabels(const ts::Dataset& ds,
                                           const core::EnsembleConfig& base,
                                           int64_t window, float beta,
                                           float lambda, uint64_t seed) {
  core::EnsembleConfig cfg = base;
  cfg.window = window;
  cfg.beta = beta;
  cfg.lambda = lambda;
  cfg.seed = seed;
  core::CaeEnsemble ensemble(cfg);
  if (!ensemble.Fit(ds.train).ok()) return {};
  auto scores = ensemble.Score(ds.test);
  if (!scores.ok()) return {};
  return metrics::Evaluate(*scores, eval::TestLabels(ds.test));
}

void PrintSweep(const std::string& title,
                std::vector<core::CandidateResult> sweep,
                const ts::Dataset& ds, const core::EnsembleConfig& base,
                uint64_t seed,
                const std::function<std::string(const core::CandidateResult&)>&
                    value_label) {
  std::sort(sweep.begin(), sweep.end(),
            [](const core::CandidateResult& a, const core::CandidateResult& b) {
              return a.recon_error < b.recon_error;
            });
  const size_t median_idx = (sweep.size() - 1) / 2;
  eval::TablePrinter table({"Value", "ReconErr", "PR", "ROC", "Median?"});
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& c = sweep[i];
    const auto r = AnnotateWithLabels(ds, base, c.window, c.beta, c.lambda,
                                      seed);
    table.AddRow({value_label(c), eval::FormatDouble(c.recon_error, 4),
                  eval::FormatDouble(r.pr_auc), eval::FormatDouble(r.roc_auc),
                  i == median_idx ? "<= selected" : ""});
  }
  std::cout << title << " (ordered by validation reconstruction error)\n"
            << table.ToString() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags = bench::Flags::Parse(argc, argv);
  std::cout << "=== Figures 14-15: unsupervised hyperparameter selection "
               "(median strategy) ===\n\n";

  for (const std::string ds_name : {"ECG", "SMAP"}) {
    auto ds = data::MakeDataset(ds_name, flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }

    core::SelectorConfig sel;
    sel.base.cae.embed_dim = 12;
    sel.base.cae.num_layers = 1;
    sel.base.num_models = 2;
    sel.base.epochs_per_model = 1;
    sel.base.max_train_windows = 128;
    sel.base.seed = flags.seed;
    // Reduced ranges keep the default run fast; they cover the paper's
    // span shape (w = 2^k, β = i/10, λ = 2^j).
    sel.ranges.windows = {4, 8, 16, 32};
    sel.ranges.betas = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};
    sel.ranges.lambdas = {1.0f, 2.0f, 8.0f, 32.0f};
    sel.random_search_trials = 5;
    sel.seed = flags.seed;

    core::HyperparameterSelector selector(sel);
    auto result = selector.Select(ds->train);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }

    std::cout << "--- " << ds_name << " ---\n";
    std::cout << "phase-1 defaults (median of random search): w="
              << result->defaults.window << " beta=" << result->defaults.beta
              << " lambda=" << result->defaults.lambda << "\n";
    std::cout << "selected: w=" << result->window << " beta=" << result->beta
              << " lambda=" << result->lambda << "\n\n";

    PrintSweep("Fig. 14(a/c) beta sweep", result->beta_sweep, *ds, sel.base,
               flags.seed, [](const core::CandidateResult& c) {
                 return eval::FormatDouble(c.beta, 1);
               });
    PrintSweep("Fig. 14(b/d) lambda sweep", result->lambda_sweep, *ds,
               sel.base, flags.seed, [](const core::CandidateResult& c) {
                 return eval::FormatDouble(c.lambda, 0);
               });
    PrintSweep("Fig. 15 window sweep", result->window_sweep, *ds, sel.base,
               flags.seed, [](const core::CandidateResult& c) {
                 return std::to_string(c.window);
               });
  }
  return 0;
}

// Table 6: quantifying ensemble diversity (Eq. 10). Compares DIV_F of the
// diversity-driven CAE-Ensemble against an ensemble whose basic models are
// trained independently from different random initialisations ("No
// Diversity"). The paper reports the driven ensemble roughly 1.6-3.2x more
// diverse; the reproduction target is driven > independent on both datasets.

#include <iostream>

#include "bench_util.h"
#include "core/ensemble.h"
#include "data/registry.h"
#include "eval/table.h"

using namespace caee;

int main(int argc, char** argv) {
  const bench::Flags flags = bench::Flags::Parse(argc, argv);
  std::cout << "=== Table 6: ensemble diversity DIV_F (Eq. 10) ===\n\n";

  eval::TablePrinter table({"Dataset", "No Diversity", "CAE-Ensemble",
                            "Ratio"});
  for (const std::string ds_name : {"ECG", "SMAP"}) {
    auto ds = data::MakeDataset(ds_name, flags.scale, flags.seed);
    if (!ds.ok()) {
      std::cerr << ds.status() << "\n";
      return 1;
    }
    core::EnsembleConfig driven;
    driven.cae.embed_dim = 0;  // auto-size
    driven.cae.num_layers = 2;
    driven.window = 16;
    driven.num_models = flags.models;
    driven.epochs_per_model = flags.epochs;
    driven.max_train_windows = 256;
    // β = 0.5 rather than Table 2's per-dataset values: at β = 0.9 (SMAP)
    // consecutive models start 90 % identical, which measures the transfer
    // mechanism more than the diversity objective this table is about.
    driven.beta = flags.beta >= 0 ? static_cast<float>(flags.beta) : 0.5f;
    
    driven.lambda =
        flags.lambda >= 0 ? static_cast<float>(flags.lambda) : 0.8f;
    // Paper-faithful for this experiment: the diversity term stays active
    // through every epoch (no curriculum), so DIV_F measures the full
    // effect of the objective.
    driven.diversity_epoch_fraction = 1.0f;
    driven.epochs_per_model = std::max<int64_t>(flags.epochs, 6);
    driven.seed = flags.seed;

    core::EnsembleConfig independent = driven;
    independent.diversity_enabled = false;
    independent.transfer_enabled = false;

    core::CaeEnsemble e_driven(driven);
    core::CaeEnsemble e_indep(independent);
    if (!e_driven.Fit(ds->train).ok() || !e_indep.Fit(ds->train).ok()) {
      std::cerr << "training failed on " << ds_name << "\n";
      return 1;
    }
    const double div_driven = e_driven.Diversity(ds->test).value();
    const double div_indep = e_indep.Diversity(ds->test).value();
    table.AddRow({ds_name, eval::FormatDouble(div_indep, 4),
                  eval::FormatDouble(div_driven, 4),
                  eval::FormatDouble(div_indep > 0 ? div_driven / div_indep
                                                   : 0.0,
                                     2)});
  }
  std::cout << table.ToString()
            << "\n(expected shape: CAE-Ensemble column > No Diversity "
               "column, as in the paper)\n";
  return 0;
}

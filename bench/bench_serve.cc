// Multi-stream serving throughput: streams x max-batch x impl table.
//
// Trains one small ensemble, then replays S independent synthetic streams
// through serve::ServingEngine round-robin and measures scored windows per
// second for each (streams, max_batch) cell, once per scoring backend:
//
//   impl=plan   the graph-free compiled-forward-plan engine (infer/plan.h),
//               the production path serve:: runs
//   impl=graph  the original ag::Var module-tree forward, kept as the
//               reference implementation
//
// The graph-vs-plan delta is the cost of per-op graph construction the plan
// removes; the streams=1/max_batch=1 row is the serving TAIL-LATENCY case
// (one window per forward pass — ns/window is the per-window latency floor,
// nothing amortises). docs/serving.md "Sizing note" and docs/inference.md
// interpret the table.
//
// `--caee_json=PATH` additionally writes machine-readable entries
// {streams, max_batch, threads, impl, windows_per_sec, ns_per_window,
// checksum}; scripts/run_benches.sh writes them to BENCH_5.json and
// scripts/check_bench_regression.py guards them in CI. The checksum is the
// sum of all scores in the cell's run — batching AND backend choice must
// not move it by a single bit, so drift here is a determinism regression,
// not noise.
//
// SCALE TABLE (PR 6): a second table sweeps streams {1k, 10k, 100k} x
// shards {1, 4, 16} at max_batch=16 on the plan backend, measuring the
// metric the sharded engine exists for — BYTES PER IDLE STREAM (open S
// sessions, warm each ring to w-1 observations so nothing is pending, then
// divide serve::ServingEngine::MemoryBytes() by S) — plus scored-window
// throughput over a small ACTIVE subset (min(S, 64) streams fed
// round-robin) while the rest of the sessions sit idle, the
// mostly-idle-tenant shape docs/capacity.md sizes deployments around.
// `--caee_scale_json=PATH` writes these rows as a separate
// {"bench": "bench_serve_scale"} document (BENCH_6.json in CI); the cell
// checksum must match across shard counts — sharding must not move a
// score by a single bit.
//
// POLICY TABLE (PR 7): a third table compares the two threshold policies
// (docs/thresholds.md) on the plan backend — static (the pre-SPOT
// baseline, engine built without SPOT params) vs spot (per-stream GPD
// tail state, adaptive verdicts) — reporting ns/window and bytes per
// idle stream so the per-stream cost of the adaptive policy
// (core::SpotBytesPerStream) shows up next to its throughput cost.
// The cell checksum must match across policies: a verdict policy decides
// FLAGS, never scores, so checksum drift here means the policy layer
// leaked into scoring. `--caee_policy_json=PATH` writes the rows as a
// {"bench": "bench_serve_policy"} document (BENCH_7.json in CI); the
// regression checker gates ns_per_window and bytes_per_idle_stream like
// the scale table.
//
// RELOAD TABLE (PR 8): a fourth table measures the cost of zero-downtime
// hot-swap (docs/operations.md). The trained ensemble is saved to a temp
// artifact, and each reload cell replays the same streams while swapping
// that identical artifact in mid-stream three times via
// serve::ServingEngine::ReloadArtifact — the steady cell is the same
// replay with zero swaps. Reported per cell: throughput, the worst
// single-Push latency (max_push_ns — a swap must not stall a push), and
// the worst single reload wall time (reload_pause_ns — the load + validate
// + shard fan-out an operator's `reload,<path>` costs). The cell checksum
// must match between the steady and reload phases and across batch sizes:
// swapping in bitwise-identical weights must not move a single score, so
// drift here means a swap dropped, duplicated, or rescored a window.
// `--caee_reload_json=PATH` writes the rows as a
// {"bench": "bench_serve_reload"} document (BENCH_8.json in CI);
// scripts/check_bench_regression.py gates ns_per_window at 2x like the
// other serve tables (max_push_ns and reload_pause_ns are single-sample
// maxima — scheduler noise, reported but not gated).
//
// HEALTH TABLE (PR 10): a fifth table prices label-free model-health
// monitoring (docs/operations.md "Model-health runbook"). Each cell
// replays the same streams with `--health` off (the baseline engine) and
// on (health ring + canary retention ring + dispersion pass on the
// scoring path), reporting ns/window and bytes per idle stream — the
// bytes delta is the fixed per-shard health + canary slab cost amortised
// over the population. The cell checksum must match across the two modes:
// health monitoring OBSERVES scores, it never changes them, so checksum
// drift here means the monitor leaked into scoring.
// `--caee_health_json=PATH` writes the rows as a
// {"bench": "bench_serve_health"} document (BENCH_10.json in CI);
// scripts/check_bench_regression.py gates ns_per_window and
// bytes_per_idle_stream like the policy table.
//
// Extra flags beyond bench_util.h: --obs=N observations per stream
// (default 48), --caee_json=PATH, --caee_scale_json=PATH,
// --caee_policy_json=PATH, --caee_reload_json=PATH,
// --caee_health_json=PATH.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/health.h"
#include "core/persistence.h"
#include "core/spot.h"
#include "serve/serving_engine.h"

namespace caee {
namespace {

struct ServeEntry {
  int64_t streams;
  int64_t max_batch;
  int64_t threads;
  const char* impl;  // "plan" or "graph"
  double windows_per_sec;
  double ns_per_window;
  double checksum;  // sum of all scores — batch- and backend-invariant
};

// Deterministic sine-plus-noise stream (each stream gets its own phase via
// the seed), matching the training distribution.
std::vector<std::vector<float>> MakeStream(int64_t length, int64_t dims,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<double> phase(static_cast<size_t>(dims));
  for (auto& p : phase) p = rng.Uniform(0.0, 6.28);
  std::vector<std::vector<float>> rows(static_cast<size_t>(length));
  for (int64_t t = 0; t < length; ++t) {
    auto& row = rows[static_cast<size_t>(t)];
    row.resize(static_cast<size_t>(dims));
    for (int64_t j = 0; j < dims; ++j) {
      row[static_cast<size_t>(j)] = static_cast<float>(
          std::sin(0.2 * static_cast<double>(t) +
                   phase[static_cast<size_t>(j)]) +
          0.05 * rng.Gaussian());
    }
  }
  return rows;
}

struct ScaleEntry {
  int64_t streams;
  int64_t shards;
  int64_t max_batch;
  int64_t threads;
  const char* impl;
  double windows_per_sec;
  double ns_per_window;
  double bytes_per_idle_stream;
  double checksum;
};

// One scale cell: S mostly-idle sessions, an active subset doing the work.
ScaleEntry RunScaleCell(core::CaeEnsemble* ensemble, int64_t num_streams,
                        int64_t num_shards, int64_t obs_per_stream,
                        int64_t dims) {
  ensemble->set_scoring_backend(core::ScoringBackend::kPlan);
  const int64_t w = ensemble->config().window;
  serve::ServeConfig config;
  config.max_batch = 16;
  config.flush_deadline_ms = 0;
  config.num_shards = num_shards;
  serve::ServingEngine engine(ensemble, config);

  // Idle population: every session opened and warmed to w-1 observations —
  // the ring is allocated and full-but-one, nothing is pending. This is
  // the steady state of a mostly-idle tenant, and the state MemoryBytes()
  // is divided over. Idle streams share one warm block (their contents
  // never get scored); active streams score from real per-stream data.
  const auto warm_rows = MakeStream(w - 1, dims, 7);
  std::vector<serve::StreamScore> results;
  for (int64_t s = 0; s < num_streams; ++s) {
    CAEE_CHECK(engine.OpenStream(s).ok());
    for (const auto& row : warm_rows) {
      CAEE_CHECK(engine.Push(s, row, &results).ok());
    }
  }
  CAEE_CHECK(results.empty());
  CAEE_CHECK(engine.pending_windows() == 0);
  const double bytes_per_idle_stream =
      static_cast<double>(engine.MemoryBytes()) /
      static_cast<double>(num_streams);

  // Throughput over the active subset, round-robin; every push past warm-up
  // yields one ready window.
  const int64_t active = std::min<int64_t>(num_streams, 64);
  std::vector<std::vector<std::vector<float>>> streams;
  for (int64_t s = 0; s < active; ++s) {
    streams.push_back(
        MakeStream(obs_per_stream, dims, 1000 + static_cast<uint64_t>(s)));
  }
  Stopwatch timer;
  for (int64_t t = 0; t < obs_per_stream; ++t) {
    for (int64_t s = 0; s < active; ++s) {
      CAEE_CHECK(engine.Push(s, streams[static_cast<size_t>(s)]
                                       [static_cast<size_t>(t)],
                             &results)
                     .ok());
    }
  }
  CAEE_CHECK(engine.Flush(&results).ok());
  const double seconds = timer.ElapsedSeconds();

  CAEE_CHECK_MSG(static_cast<int64_t>(results.size()) ==
                     active * obs_per_stream,
                 "scored " << results.size() << " windows, expected "
                           << active * obs_per_stream);
  // Individual scores are bitwise shard-count-invariant, but arrival ORDER
  // is not (each shard flushes its own queue) — and double addition is not
  // associative. Sum in canonical (stream, index) order so the checksum
  // compares the score SET, which is the actual contract.
  std::sort(results.begin(), results.end(),
            [](const serve::StreamScore& a, const serve::StreamScore& b) {
              return a.stream_id != b.stream_id ? a.stream_id < b.stream_id
                                                : a.index < b.index;
            });
  double checksum = 0.0;
  for (const auto& r : results) checksum += r.score;

  ScaleEntry entry;
  entry.streams = num_streams;
  entry.shards = num_shards;
  entry.max_batch = config.max_batch;
  entry.threads = static_cast<int64_t>(ensemble->config().num_threads);
  entry.impl = "plan";
  entry.windows_per_sec = static_cast<double>(results.size()) / seconds;
  entry.ns_per_window = seconds * 1e9 / static_cast<double>(results.size());
  entry.bytes_per_idle_stream = bytes_per_idle_stream;
  entry.checksum = checksum;
  return entry;
}

struct PolicyEntry {
  int64_t streams;
  int64_t max_batch;
  int64_t threads;
  const char* policy;  // "static" or "spot"
  double windows_per_sec;
  double ns_per_window;
  double bytes_per_idle_stream;
  double checksum;  // policy-invariant: verdicts never touch scores
};

// One policy cell: the same streams scored under one threshold policy.
// The static cell builds the engine WITHOUT SPOT params — the true
// pre-policy baseline — so the spot-vs-static bytes delta is the whole
// per-stream cost of the adaptive policy, not just its ring slab.
PolicyEntry RunPolicyCell(
    core::CaeEnsemble* ensemble, const std::optional<core::SpotInit>& spot,
    core::ThresholdPolicy policy,
    const std::vector<std::vector<std::vector<float>>>& streams) {
  ensemble->set_scoring_backend(core::ScoringBackend::kPlan);
  const int64_t w = ensemble->config().window;
  serve::ServeConfig config;
  config.max_batch = 16;
  config.flush_deadline_ms = 0;
  config.threshold_policy = policy;
  serve::ServingEngine engine(ensemble, config, std::nullopt, spot);

  const int64_t num_streams = static_cast<int64_t>(streams.size());
  std::vector<serve::StreamScore> results;
  for (int64_t s = 0; s < num_streams; ++s) {
    CAEE_CHECK(engine.OpenStream(s).ok());
    for (int64_t t = 0; t < w - 1; ++t) {
      CAEE_CHECK(engine.Push(s, streams[static_cast<size_t>(s)]
                                       [static_cast<size_t>(t)],
                             &results)
                     .ok());
    }
  }
  CAEE_CHECK(results.empty());
  const double bytes_per_idle_stream =
      static_cast<double>(engine.MemoryBytes()) /
      static_cast<double>(num_streams);

  const int64_t length = static_cast<int64_t>(streams.front().size());
  Stopwatch timer;
  for (int64_t t = w - 1; t < length; ++t) {
    for (int64_t s = 0; s < num_streams; ++s) {
      CAEE_CHECK(engine.Push(s, streams[static_cast<size_t>(s)]
                                       [static_cast<size_t>(t)],
                             &results)
                     .ok());
    }
  }
  CAEE_CHECK(engine.Flush(&results).ok());
  const double seconds = timer.ElapsedSeconds();

  const int64_t expected = num_streams * (length - w + 1);
  CAEE_CHECK_MSG(static_cast<int64_t>(results.size()) == expected,
                 "scored " << results.size() << " windows, expected "
                           << expected);
  double checksum = 0.0;
  for (const auto& r : results) checksum += r.score;

  PolicyEntry entry;
  entry.streams = num_streams;
  entry.max_batch = config.max_batch;
  entry.threads = static_cast<int64_t>(ensemble->config().num_threads);
  entry.policy =
      policy == core::ThresholdPolicy::kSpot ? "spot" : "static";
  entry.windows_per_sec = static_cast<double>(results.size()) / seconds;
  entry.ns_per_window = seconds * 1e9 / static_cast<double>(results.size());
  entry.bytes_per_idle_stream = bytes_per_idle_stream;
  entry.checksum = checksum;
  return entry;
}

struct HealthEntry {
  int64_t streams;
  int64_t max_batch;
  int64_t threads;
  const char* health;  // "off" or "on"
  double windows_per_sec;
  double ns_per_window;
  double bytes_per_idle_stream;
  double checksum;  // mode-invariant: monitoring observes, never changes
};

// One health cell: the same streams scored with model-health monitoring
// off (the baseline engine) or on (health ring + canary retention + the
// member-dispersion pass all active on the scoring path). The off cell
// builds the engine without a health reference at all, so the on-vs-off
// delta is the whole cost of `--health`, not just the ring writes.
HealthEntry RunHealthCell(
    core::CaeEnsemble* ensemble, const core::HealthRef& ref, bool enabled,
    const std::vector<std::vector<std::vector<float>>>& streams) {
  ensemble->set_scoring_backend(core::ScoringBackend::kPlan);
  const int64_t w = ensemble->config().window;
  serve::ServeConfig config;
  config.max_batch = 16;
  config.flush_deadline_ms = 0;
  config.health.enabled = enabled;
  serve::ServingEngine engine(
      ensemble, config, std::nullopt, std::nullopt,
      enabled ? std::optional<core::HealthRef>(ref) : std::nullopt);

  const int64_t num_streams = static_cast<int64_t>(streams.size());
  std::vector<serve::StreamScore> results;
  for (int64_t s = 0; s < num_streams; ++s) {
    CAEE_CHECK(engine.OpenStream(s).ok());
    for (int64_t t = 0; t < w - 1; ++t) {
      CAEE_CHECK(engine.Push(s, streams[static_cast<size_t>(s)]
                                       [static_cast<size_t>(t)],
                             &results)
                     .ok());
    }
  }
  CAEE_CHECK(results.empty());
  const double bytes_per_idle_stream =
      static_cast<double>(engine.MemoryBytes()) /
      static_cast<double>(num_streams);

  const int64_t length = static_cast<int64_t>(streams.front().size());
  Stopwatch timer;
  for (int64_t t = w - 1; t < length; ++t) {
    for (int64_t s = 0; s < num_streams; ++s) {
      CAEE_CHECK(engine.Push(s, streams[static_cast<size_t>(s)]
                                       [static_cast<size_t>(t)],
                             &results)
                     .ok());
    }
  }
  CAEE_CHECK(engine.Flush(&results).ok());
  const double seconds = timer.ElapsedSeconds();

  const int64_t expected = num_streams * (length - w + 1);
  CAEE_CHECK_MSG(static_cast<int64_t>(results.size()) == expected,
                 "scored " << results.size() << " windows, expected "
                           << expected);
  if (enabled) {
    // The monitored path really ran: the health ring saw every window.
    CAEE_CHECK_MSG(engine.Stats().health_window > 0,
                   "health monitoring on but the health ring stayed empty");
  }
  double checksum = 0.0;
  for (const auto& r : results) checksum += r.score;

  HealthEntry entry;
  entry.streams = num_streams;
  entry.max_batch = config.max_batch;
  entry.threads = static_cast<int64_t>(ensemble->config().num_threads);
  entry.health = enabled ? "on" : "off";
  entry.windows_per_sec = static_cast<double>(results.size()) / seconds;
  entry.ns_per_window = seconds * 1e9 / static_cast<double>(results.size());
  entry.bytes_per_idle_stream = bytes_per_idle_stream;
  entry.checksum = checksum;
  return entry;
}

struct ReloadEntry {
  int64_t streams;
  int64_t max_batch;
  int64_t threads;
  const char* phase;  // "steady" (zero swaps) or "reload" (three swaps)
  int64_t reloads;
  double windows_per_sec;
  double ns_per_window;
  double max_push_ns;      // worst single Push — swaps must not stall one
  double reload_pause_ns;  // worst single ReloadArtifact; 0 in steady phase
  double checksum;         // phase- and batch-invariant
};

// One reload cell: the same round-robin replay as RunCell, with
// `num_reloads` mid-stream hot-swaps of `artifact_path` — an artifact
// holding bitwise-identical weights — spaced evenly across the ticks. The
// swap is issued inline between ticks, exactly where caee_serve's control
// loop issues `reload,<path>`, so reload_pause_ns is the pause an operator
// actually pays: file read + parse + validation + shard fan-out.
ReloadEntry RunReloadCell(
    core::CaeEnsemble* ensemble,
    const std::vector<std::vector<std::vector<float>>>& streams,
    int64_t max_batch, const std::string& artifact_path,
    int64_t num_reloads) {
  ensemble->set_scoring_backend(core::ScoringBackend::kPlan);
  serve::ServeConfig config;
  config.max_batch = max_batch;
  config.flush_deadline_ms = 0;
  serve::ServingEngine engine(ensemble, config);

  const int64_t num_streams = static_cast<int64_t>(streams.size());
  for (int64_t s = 0; s < num_streams; ++s) {
    CAEE_CHECK(engine.OpenStream(s).ok());
  }
  const int64_t length = static_cast<int64_t>(streams.front().size());
  std::vector<int64_t> reload_at;
  for (int64_t r = 1; r <= num_reloads; ++r) {
    reload_at.push_back(length * r / (num_reloads + 1));
  }

  std::vector<serve::StreamScore> results;
  double max_push_ns = 0.0;
  double reload_pause_ns = 0.0;
  size_t next_reload = 0;
  Stopwatch timer;
  for (int64_t t = 0; t < length; ++t) {
    if (next_reload < reload_at.size() &&
        t == reload_at[next_reload]) {
      Stopwatch pause;
      const auto swapped = engine.ReloadArtifact(artifact_path);
      const double pause_ns = pause.ElapsedSeconds() * 1e9;
      CAEE_CHECK_MSG(swapped.ok(),
                     "mid-stream reload failed: " << swapped.status());
      reload_pause_ns = std::max(reload_pause_ns, pause_ns);
      ++next_reload;
    }
    for (int64_t s = 0; s < num_streams; ++s) {
      Stopwatch push;
      CAEE_CHECK(engine.Push(s, streams[static_cast<size_t>(s)]
                                       [static_cast<size_t>(t)],
                             &results)
                     .ok());
      max_push_ns = std::max(max_push_ns, push.ElapsedSeconds() * 1e9);
    }
  }
  CAEE_CHECK(engine.Flush(&results).ok());
  const double seconds = timer.ElapsedSeconds();

  // Zero-downtime contract, checked in-bench: every swap adopted (the
  // engine converged to generation 1 + num_reloads), and not one window
  // was dropped or duplicated along the way.
  CAEE_CHECK_MSG(engine.generation() == 1 + num_reloads,
                 "expected generation " << 1 + num_reloads << ", live is "
                                        << engine.generation());
  const int64_t w = ensemble->config().window;
  const int64_t expected = num_streams * (length - w + 1);
  CAEE_CHECK_MSG(static_cast<int64_t>(results.size()) == expected,
                 "scored " << results.size() << " windows across "
                           << num_reloads << " reload(s), expected "
                           << expected);
  // Same canonical-order sum as the scale table: swaps do not reorder a
  // stream's windows, but shard flush interleaving is not an ordering
  // contract, and double addition is not associative.
  std::sort(results.begin(), results.end(),
            [](const serve::StreamScore& a, const serve::StreamScore& b) {
              return a.stream_id != b.stream_id ? a.stream_id < b.stream_id
                                                : a.index < b.index;
            });
  double checksum = 0.0;
  for (const auto& r : results) checksum += r.score;

  ReloadEntry entry;
  entry.streams = num_streams;
  entry.max_batch = max_batch;
  entry.threads = static_cast<int64_t>(ensemble->config().num_threads);
  entry.phase = num_reloads > 0 ? "reload" : "steady";
  entry.reloads = num_reloads;
  entry.windows_per_sec = static_cast<double>(results.size()) / seconds;
  entry.ns_per_window = seconds * 1e9 / static_cast<double>(results.size());
  entry.max_push_ns = max_push_ns;
  entry.reload_pause_ns = reload_pause_ns;
  entry.checksum = checksum;
  return entry;
}

ServeEntry RunCell(core::CaeEnsemble* ensemble,
                   const std::vector<std::vector<std::vector<float>>>& streams,
                   int64_t max_batch, core::ScoringBackend backend) {
  ensemble->set_scoring_backend(backend);
  serve::ServeConfig config;
  config.max_batch = max_batch;
  config.flush_deadline_ms = 0;  // timing measures batching, not timers
  serve::ServingEngine engine(ensemble, config);

  const int64_t num_streams = static_cast<int64_t>(streams.size());
  for (int64_t s = 0; s < num_streams; ++s) {
    CAEE_CHECK(engine.OpenStream(s).ok());
  }
  const size_t length = streams.front().size();
  std::vector<serve::StreamScore> results;
  Stopwatch timer;
  // Round-robin arrival: one tick delivers one observation per stream,
  // which is what interleaves windows from different streams into shared
  // micro-batches.
  for (size_t t = 0; t < length; ++t) {
    for (int64_t s = 0; s < num_streams; ++s) {
      CAEE_CHECK(
          engine.Push(s, streams[static_cast<size_t>(s)][t], &results).ok());
    }
  }
  CAEE_CHECK(engine.Flush(&results).ok());
  const double seconds = timer.ElapsedSeconds();

  const int64_t w = ensemble->config().window;
  const int64_t expected =
      num_streams * (static_cast<int64_t>(length) - w + 1);
  CAEE_CHECK_MSG(static_cast<int64_t>(results.size()) == expected,
                 "scored " << results.size() << " windows, expected "
                           << expected);
  double checksum = 0.0;
  for (const auto& r : results) checksum += r.score;

  ServeEntry entry;
  entry.streams = num_streams;
  entry.max_batch = max_batch;
  entry.threads = static_cast<int64_t>(ensemble->config().num_threads);
  entry.impl = backend == core::ScoringBackend::kPlan ? "plan" : "graph";
  entry.windows_per_sec = static_cast<double>(results.size()) / seconds;
  entry.ns_per_window =
      seconds * 1e9 / static_cast<double>(results.size());
  entry.checksum = checksum;
  return entry;
}

int Main(int argc, char** argv) {
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  std::string json_path, scale_json_path, policy_json_path,
      reload_json_path, health_json_path;
  int64_t obs_per_stream = 48;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--caee_scale_json=", 18) == 0) {
      scale_json_path = argv[i] + 18;
    } else if (std::strncmp(argv[i], "--caee_policy_json=", 19) == 0) {
      policy_json_path = argv[i] + 19;
    } else if (std::strncmp(argv[i], "--caee_reload_json=", 19) == 0) {
      reload_json_path = argv[i] + 19;
    } else if (std::strncmp(argv[i], "--caee_health_json=", 19) == 0) {
      health_json_path = argv[i] + 19;
    } else if (std::strncmp(argv[i], "--caee_json=", 12) == 0) {
      json_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--obs=", 6) == 0) {
      obs_per_stream = std::atoll(argv[i] + 6);
    }
  }

  core::EnsembleConfig config;
  config.cae.embed_dim = 8;
  config.cae.num_layers = 1;
  config.window = 8;
  config.num_models = flags.models;
  config.epochs_per_model = flags.epochs;
  config.batch_size = 32;
  config.max_train_windows = 128;
  config.num_threads = flags.threads;
  config.seed = flags.seed;

  const int64_t dims = 4;
  core::CaeEnsemble ensemble(config);
  std::vector<double> train_scores;  // SPOT calibration reference
  {
    const auto train_rows = MakeStream(260, dims, flags.seed);
    ts::TimeSeries train(static_cast<int64_t>(train_rows.size()), dims);
    for (int64_t t = 0; t < train.length(); ++t) {
      for (int64_t j = 0; j < dims; ++j) {
        train.value(t, j) = train_rows[static_cast<size_t>(t)]
                                      [static_cast<size_t>(j)];
      }
    }
    CAEE_CHECK(ensemble.Fit(train).ok());
    auto scored = ensemble.Score(train);
    CAEE_CHECK(scored.ok());
    train_scores = std::move(scored).value();
  }

  std::printf(
      "bench_serve: M=%lld, window=%lld, dims=%lld, obs/stream=%lld, "
      "threads=%lld\n\n",
      static_cast<long long>(config.num_models),
      static_cast<long long>(config.window), static_cast<long long>(dims),
      static_cast<long long>(obs_per_stream),
      static_cast<long long>(config.num_threads));
  std::printf("%8s %10s %7s %16s %14s\n", "streams", "max_batch", "impl",
              "windows/sec", "ns/window");

  std::vector<ServeEntry> entries;
  for (const int64_t num_streams : {int64_t{1}, int64_t{4}, int64_t{16}}) {
    std::vector<std::vector<std::vector<float>>> streams;
    for (int64_t s = 0; s < num_streams; ++s) {
      streams.push_back(MakeStream(obs_per_stream, dims,
                                   1000 + static_cast<uint64_t>(s)));
    }
    double base_checksum = 0.0;
    bool have_base = false;
    for (const int64_t max_batch : {int64_t{1}, int64_t{4}, int64_t{16}}) {
      for (const auto backend :
           {core::ScoringBackend::kPlan, core::ScoringBackend::kGraph}) {
        const ServeEntry entry =
            RunCell(&ensemble, streams, max_batch, backend);
        std::printf("%8lld %10lld %7s %16.1f %14.1f\n",
                    static_cast<long long>(entry.streams),
                    static_cast<long long>(entry.max_batch), entry.impl,
                    entry.windows_per_sec, entry.ns_per_window);
        // Determinism across batch sizes AND backends: identical inputs
        // must sum to the identical checksum everywhere.
        if (!have_base) {
          base_checksum = entry.checksum;
          have_base = true;
        } else {
          CAEE_CHECK_MSG(entry.checksum == base_checksum,
                         "checksum drift at streams=" << num_streams
                             << " max_batch=" << max_batch << " impl="
                             << entry.impl
                             << " — batching or backend changed scores");
        }
        entries.push_back(entry);
      }
    }
    std::printf("\n");
  }

  // The tail-latency summary: one window per pass, nothing amortised.
  for (const ServeEntry& e : entries) {
    if (e.streams == 1 && e.max_batch == 1) {
      std::printf("B=1 latency (%5s): %.1f us/window\n", e.impl,
                  e.ns_per_window / 1000.0);
    }
  }

  // -------------------------------------------------------------------
  // Scale table: mostly-idle populations, sharded engines.
  // -------------------------------------------------------------------
  std::printf("\nscale table (max_batch=16, impl=plan, active streams "
              "capped at 64):\n");
  std::printf("%9s %7s %16s %14s %18s\n", "streams", "shards", "windows/sec",
              "ns/window", "bytes/idle-stream");
  std::vector<ScaleEntry> scale_entries;
  for (const int64_t num_streams :
       {int64_t{1000}, int64_t{10000}, int64_t{100000}}) {
    double base_checksum = 0.0;
    bool have_base = false;
    for (const int64_t num_shards : {int64_t{1}, int64_t{4}, int64_t{16}}) {
      const ScaleEntry entry = RunScaleCell(&ensemble, num_streams,
                                            num_shards, obs_per_stream, dims);
      std::printf("%9lld %7lld %16.1f %14.1f %18.1f\n",
                  static_cast<long long>(entry.streams),
                  static_cast<long long>(entry.shards), entry.windows_per_sec,
                  entry.ns_per_window, entry.bytes_per_idle_stream);
      // Shard-count invariance: same active streams, same data — the
      // score sum must not move by a bit when only the sharding changes.
      if (!have_base) {
        base_checksum = entry.checksum;
        have_base = true;
      } else {
        CAEE_CHECK_MSG(entry.checksum == base_checksum,
                       "checksum drift at streams=" << num_streams
                           << " shards=" << num_shards
                           << " — sharding changed scores");
      }
      scale_entries.push_back(entry);
    }
  }
  const ScaleEntry& biggest = scale_entries.back();
  std::printf("at %lld streams / %lld shards: %.1f bytes per idle stream "
              "(~%.1f MiB per 10^6 streams)\n",
              static_cast<long long>(biggest.streams),
              static_cast<long long>(biggest.shards),
              biggest.bytes_per_idle_stream,
              biggest.bytes_per_idle_stream * 1e6 / (1024.0 * 1024.0));

  // -------------------------------------------------------------------
  // Policy table: static vs streaming-SPOT verdicts on the same streams.
  // -------------------------------------------------------------------
  // level 0.9 (not the serving default 0.98) so this small training set
  // yields comfortably more than kSpotMinPeaks excesses.
  core::SpotConfig spot_config;
  spot_config.level = 0.9;
  spot_config.q = 0.02;
  spot_config.peak_capacity = 32;
  auto calibrated = core::CalibrateSpot(train_scores, spot_config);
  CAEE_CHECK_MSG(calibrated.ok(),
                 "SPOT calibration failed: " << calibrated.status());
  const std::optional<core::SpotInit> spot(std::move(calibrated).value());

  std::printf("\npolicy table (max_batch=16, impl=plan, peak_capacity=%lld; "
              "verdict policy must not move scores):\n",
              static_cast<long long>(spot_config.peak_capacity));
  std::printf("%8s %8s %16s %14s %18s\n", "streams", "policy", "windows/sec",
              "ns/window", "bytes/idle-stream");
  std::vector<PolicyEntry> policy_entries;
  for (const int64_t num_streams : {int64_t{4}, int64_t{16}}) {
    std::vector<std::vector<std::vector<float>>> streams;
    for (int64_t s = 0; s < num_streams; ++s) {
      streams.push_back(MakeStream(obs_per_stream, dims,
                                   1000 + static_cast<uint64_t>(s)));
    }
    double base_checksum = 0.0;
    bool have_base = false;
    for (const bool use_spot : {false, true}) {
      const PolicyEntry entry = RunPolicyCell(
          &ensemble, use_spot ? spot : std::optional<core::SpotInit>{},
          use_spot ? core::ThresholdPolicy::kSpot
                   : core::ThresholdPolicy::kStatic,
          streams);
      std::printf("%8lld %8s %16.1f %14.1f %18.1f\n",
                  static_cast<long long>(entry.streams), entry.policy,
                  entry.windows_per_sec, entry.ns_per_window,
                  entry.bytes_per_idle_stream);
      // A threshold policy decides flags, never scores: any checksum
      // drift means the policy layer leaked into scoring.
      if (!have_base) {
        base_checksum = entry.checksum;
        have_base = true;
      } else {
        CAEE_CHECK_MSG(entry.checksum == base_checksum,
                       "checksum drift at streams="
                           << num_streams << " policy=" << entry.policy
                           << " — the threshold policy changed scores");
      }
      policy_entries.push_back(entry);
    }
  }
  std::printf("spot per-stream overhead at this capacity: "
              "core::SpotBytesPerStream = %lld bytes\n",
              static_cast<long long>(core::SpotBytesPerStream(spot_config)));

  // -------------------------------------------------------------------
  // Reload table: hot-swapping an identical artifact mid-stream.
  // -------------------------------------------------------------------
  const std::string reload_artifact = "bench_serve_reload.caee";
  {
    // Same weights, no threshold/SPOT sections — matching the engine the
    // reload cells construct, so validation always adopts the candidate.
    const Status saved = core::SaveEnsemble(ensemble, reload_artifact);
    CAEE_CHECK_MSG(saved.ok(), "artifact save failed: " << saved);
  }
  const int64_t kReloads = 3;
  std::printf("\nreload table (impl=plan, %lld mid-stream swaps of the "
              "identical artifact; a swap must not move a score):\n",
              static_cast<long long>(kReloads));
  std::printf("%8s %10s %7s %16s %14s %13s %16s\n", "streams", "max_batch",
              "phase", "windows/sec", "ns/window", "max-push-us",
              "reload-pause-us");
  std::vector<ReloadEntry> reload_entries;
  for (const int64_t num_streams : {int64_t{4}, int64_t{16}}) {
    std::vector<std::vector<std::vector<float>>> streams;
    for (int64_t s = 0; s < num_streams; ++s) {
      streams.push_back(MakeStream(obs_per_stream, dims,
                                   1000 + static_cast<uint64_t>(s)));
    }
    double base_checksum = 0.0;
    bool have_base = false;
    for (const int64_t max_batch : {int64_t{1}, int64_t{16}}) {
      for (const int64_t num_reloads : {int64_t{0}, kReloads}) {
        const ReloadEntry entry =
            RunReloadCell(&ensemble, streams, max_batch, reload_artifact,
                          num_reloads);
        std::printf("%8lld %10lld %7s %16.1f %14.1f %13.1f %16.1f\n",
                    static_cast<long long>(entry.streams),
                    static_cast<long long>(entry.max_batch), entry.phase,
                    entry.windows_per_sec, entry.ns_per_window,
                    entry.max_push_ns / 1000.0,
                    entry.reload_pause_ns / 1000.0);
        // Swap invariance: identical weights in, identical score set out —
        // regardless of batch size or how many swaps interleaved.
        if (!have_base) {
          base_checksum = entry.checksum;
          have_base = true;
        } else {
          CAEE_CHECK_MSG(entry.checksum == base_checksum,
                         "checksum drift at streams="
                             << num_streams << " max_batch=" << max_batch
                             << " phase=" << entry.phase
                             << " — a hot-swap changed scores");
        }
        reload_entries.push_back(entry);
      }
    }
  }
  std::remove(reload_artifact.c_str());

  // -------------------------------------------------------------------
  // Health table: model-health monitoring off vs on, same streams.
  // -------------------------------------------------------------------
  core::HealthRef health_ref;
  {
    // Constant member dispersion: the serving-side cost being priced does
    // not depend on the reference's values, only on its presence.
    std::vector<double> dispersions(train_scores.size(), 0.25);
    auto calibrated_health = core::CalibrateHealthRef(train_scores,
                                                      dispersions);
    CAEE_CHECK_MSG(calibrated_health.ok(), "health calibration failed: "
                                               << calibrated_health.status());
    health_ref = std::move(calibrated_health).value();
  }
  std::printf("\nhealth table (max_batch=16, impl=plan; monitoring must "
              "not move scores):\n");
  std::printf("%8s %8s %16s %14s %18s\n", "streams", "health", "windows/sec",
              "ns/window", "bytes/idle-stream");
  std::vector<HealthEntry> health_entries;
  for (const int64_t num_streams : {int64_t{4}, int64_t{16}}) {
    std::vector<std::vector<std::vector<float>>> streams;
    for (int64_t s = 0; s < num_streams; ++s) {
      streams.push_back(MakeStream(obs_per_stream, dims,
                                   1000 + static_cast<uint64_t>(s)));
    }
    double base_checksum = 0.0;
    bool have_base = false;
    for (const bool enabled : {false, true}) {
      const HealthEntry entry =
          RunHealthCell(&ensemble, health_ref, enabled, streams);
      std::printf("%8lld %8s %16.1f %14.1f %18.1f\n",
                  static_cast<long long>(entry.streams), entry.health,
                  entry.windows_per_sec, entry.ns_per_window,
                  entry.bytes_per_idle_stream);
      // Health monitoring observes scores; it must never change one.
      if (!have_base) {
        base_checksum = entry.checksum;
        have_base = true;
      } else {
        CAEE_CHECK_MSG(entry.checksum == base_checksum,
                       "checksum drift at streams="
                           << num_streams << " health=" << entry.health
                           << " — health monitoring changed scores");
      }
      health_entries.push_back(entry);
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_serve\",\n  \"schema\": 2,\n"
                    "  \"entries\": [\n");
    for (size_t i = 0; i < entries.size(); ++i) {
      const ServeEntry& e = entries[i];
      std::fprintf(
          f,
          "    {\"streams\": %lld, \"max_batch\": %lld, \"threads\": %lld, "
          "\"impl\": \"%s\", \"windows_per_sec\": %.1f, "
          "\"ns_per_window\": %.1f, \"checksum\": %.17g}%s\n",
          static_cast<long long>(e.streams),
          static_cast<long long>(e.max_batch),
          static_cast<long long>(e.threads), e.impl, e.windows_per_sec,
          e.ns_per_window, e.checksum,
          i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries)\n", json_path.c_str(),
                entries.size());
  }

  if (!scale_json_path.empty()) {
    std::FILE* f = std::fopen(scale_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", scale_json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_serve_scale\",\n  \"schema\": 1,\n"
                 "  \"entries\": [\n");
    for (size_t i = 0; i < scale_entries.size(); ++i) {
      const ScaleEntry& e = scale_entries[i];
      std::fprintf(
          f,
          "    {\"streams\": %lld, \"shards\": %lld, \"max_batch\": %lld, "
          "\"threads\": %lld, \"impl\": \"%s\", \"windows_per_sec\": %.1f, "
          "\"ns_per_window\": %.1f, \"bytes_per_idle_stream\": %.1f, "
          "\"checksum\": %.17g}%s\n",
          static_cast<long long>(e.streams), static_cast<long long>(e.shards),
          static_cast<long long>(e.max_batch),
          static_cast<long long>(e.threads), e.impl, e.windows_per_sec,
          e.ns_per_window, e.bytes_per_idle_stream, e.checksum,
          i + 1 < scale_entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries)\n", scale_json_path.c_str(),
                scale_entries.size());
  }

  if (!policy_json_path.empty()) {
    std::FILE* f = std::fopen(policy_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", policy_json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_serve_policy\",\n  \"schema\": 1,\n"
                 "  \"entries\": [\n");
    for (size_t i = 0; i < policy_entries.size(); ++i) {
      const PolicyEntry& e = policy_entries[i];
      std::fprintf(
          f,
          "    {\"streams\": %lld, \"max_batch\": %lld, \"threads\": %lld, "
          "\"policy\": \"%s\", \"windows_per_sec\": %.1f, "
          "\"ns_per_window\": %.1f, \"bytes_per_idle_stream\": %.1f, "
          "\"checksum\": %.17g}%s\n",
          static_cast<long long>(e.streams),
          static_cast<long long>(e.max_batch),
          static_cast<long long>(e.threads), e.policy, e.windows_per_sec,
          e.ns_per_window, e.bytes_per_idle_stream, e.checksum,
          i + 1 < policy_entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries)\n", policy_json_path.c_str(),
                policy_entries.size());
  }

  if (!reload_json_path.empty()) {
    std::FILE* f = std::fopen(reload_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", reload_json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_serve_reload\",\n  \"schema\": 1,\n"
                 "  \"entries\": [\n");
    for (size_t i = 0; i < reload_entries.size(); ++i) {
      const ReloadEntry& e = reload_entries[i];
      std::fprintf(
          f,
          "    {\"streams\": %lld, \"max_batch\": %lld, \"threads\": %lld, "
          "\"phase\": \"%s\", \"reloads\": %lld, "
          "\"windows_per_sec\": %.1f, \"ns_per_window\": %.1f, "
          "\"max_push_ns\": %.1f, \"reload_pause_ns\": %.1f, "
          "\"checksum\": %.17g}%s\n",
          static_cast<long long>(e.streams),
          static_cast<long long>(e.max_batch),
          static_cast<long long>(e.threads), e.phase,
          static_cast<long long>(e.reloads), e.windows_per_sec,
          e.ns_per_window, e.max_push_ns, e.reload_pause_ns, e.checksum,
          i + 1 < reload_entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries)\n", reload_json_path.c_str(),
                reload_entries.size());
  }

  if (!health_json_path.empty()) {
    std::FILE* f = std::fopen(health_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", health_json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_serve_health\",\n  \"schema\": 1,\n"
                 "  \"entries\": [\n");
    for (size_t i = 0; i < health_entries.size(); ++i) {
      const HealthEntry& e = health_entries[i];
      std::fprintf(
          f,
          "    {\"streams\": %lld, \"max_batch\": %lld, \"threads\": %lld, "
          "\"health\": \"%s\", \"windows_per_sec\": %.1f, "
          "\"ns_per_window\": %.1f, \"bytes_per_idle_stream\": %.1f, "
          "\"checksum\": %.17g}%s\n",
          static_cast<long long>(e.streams),
          static_cast<long long>(e.max_batch),
          static_cast<long long>(e.threads), e.health, e.windows_per_sec,
          e.ns_per_window, e.bytes_per_idle_stream, e.checksum,
          i + 1 < health_entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries)\n", health_json_path.c_str(),
                health_entries.size());
  }
  return 0;
}

}  // namespace
}  // namespace caee

int main(int argc, char** argv) { return caee::Main(argc, argv); }
